//! Per-kernel proof obligations: OOB-freedom, write disjointness,
//! shared-memory footprint containment and inter-barrier race-freedom.
//!
//! Soundness rests on three facts about the abstract domain:
//!
//! 1. every access summary is an [`AffineMap`] with non-negative
//!    coefficients over a bounded box, so interval bounds are *exact* —
//!    a proven `max < len` obligation covers every concrete index;
//! 2. injectivity of a map (the non-overlapping-digits test) implies the
//!    iteration points — and therefore distinct threads and blocks — hit
//!    pairwise distinct indices, which is write disjointness;
//! 3. displaced accesses are clamped by the kernels into their row, so
//!    bounding the row bounds the displaced set
//!    ([`SmemAccess::max_elem`]).
//!
//! The obligations are *sufficient*, not complete: a kernel the rules
//! cannot prove is reported unproven even if it happens to be safe.
//! For the five shipped kernel families every obligation discharges —
//! `trisolve analyze` asserts exactly that over the full evaluation
//! matrix, and cross-validates against the dynamic sanitizer.

use serde::Serialize;
use trisolve_core::kernels::access::{KernelAccessSummary, SmemAccess};
use trisolve_gpu_sim::LaunchConfig;

/// One named proof obligation and its verdict.
#[derive(Debug, Clone, Serialize)]
pub struct Obligation {
    /// Stable obligation name, e.g. `"oob-global:base::store"`.
    pub name: String,
    /// Whether the proof discharged.
    pub proven: bool,
    /// The inequality or argument behind the verdict, with numbers.
    pub detail: String,
}

impl Obligation {
    fn proven(name: String, detail: String) -> Self {
        Obligation {
            name,
            proven: true,
            detail,
        }
    }

    fn failed(name: String, detail: String) -> Self {
        Obligation {
            name,
            proven: false,
            detail,
        }
    }
}

/// The proof record of one kernel launch.
#[derive(Debug, Clone, Serialize)]
pub struct KernelProof {
    /// Kernel label (from the access summary).
    pub label: String,
    /// Every obligation checked, proven or not.
    pub obligations: Vec<Obligation>,
}

impl KernelProof {
    /// True when every obligation discharged.
    pub fn proven(&self) -> bool {
        self.obligations.iter().all(|o| o.proven)
    }

    /// The obligations that failed.
    pub fn failures(&self) -> impl Iterator<Item = &Obligation> {
        self.obligations.iter().filter(|o| !o.proven)
    }
}

/// Prove one kernel's access summary against its launch configuration.
///
/// `elem_bytes` converts the modeled shared-memory element footprint to
/// bytes for comparison with the declared launch footprint.
pub fn prove_kernel(
    summary: &KernelAccessSummary,
    cfg: &LaunchConfig,
    elem_bytes: usize,
) -> KernelProof {
    let mut obligations = Vec::new();

    // (a) OOB-freedom of every global access, and partition proofs for
    // exclusive writes.
    for g in &summary.global {
        let name = format!("oob-global:{}", g.site);
        match g.map.max_index() {
            None => obligations.push(Obligation::proven(name, "empty access set".into())),
            Some(max) if max < summary.buffer_len => {
                let clamp_note = if g.clamped_neighbours {
                    "; neighbour rows clamped into the footprint"
                } else {
                    ""
                };
                obligations.push(Obligation::proven(
                    name,
                    format!(
                        "max index {max} < buffer length {}{clamp_note}",
                        summary.buffer_len
                    ),
                ));
            }
            Some(max) => obligations.push(Obligation::failed(
                name,
                format!("max index {max} >= buffer length {}", summary.buffer_len),
            )),
        }
        if g.is_write && g.exclusive {
            let name = format!("write-partition:{}", g.site);
            if g.map.is_injective() {
                let cover = if g.map.covers_exactly() {
                    "injective and exactly covers its footprint"
                } else {
                    "injective (distinct iteration points hit distinct indices)"
                };
                obligations.push(Obligation::proven(name, cover.into()));
            } else {
                obligations.push(Obligation::failed(
                    name,
                    "write map is not provably injective".into(),
                ));
            }
        }
    }

    // (b) shared-memory footprint containment + per-access bounds.
    if summary.smem_elems > 0 {
        let modeled = summary.smem_elems * elem_bytes;
        let name = "smem-footprint".to_string();
        if modeled <= cfg.shared_mem_bytes {
            obligations.push(Obligation::proven(
                name,
                format!(
                    "modeled {modeled} bytes <= declared {} bytes",
                    cfg.shared_mem_bytes
                ),
            ));
        } else {
            obligations.push(Obligation::failed(
                name,
                format!(
                    "modeled {modeled} bytes exceeds declared {} bytes",
                    cfg.shared_mem_bytes
                ),
            ));
        }
    }
    for interval in &summary.intervals {
        for a in &interval.accesses {
            let name = format!("oob-smem:{}@{}", a.site, interval.label);
            if !a.displacements.is_empty() && a.clamp_row.is_none() {
                obligations.push(Obligation::failed(
                    name,
                    "displaced access without a clamp row is unbounded".into(),
                ));
                continue;
            }
            match a.max_elem() {
                None => obligations.push(Obligation::proven(name, "empty access set".into())),
                Some(max) if max < summary.smem_elems => obligations.push(Obligation::proven(
                    name,
                    format!("max element {max} < footprint {}", summary.smem_elems),
                )),
                Some(max) => obligations.push(Obligation::failed(
                    name,
                    format!("max element {max} >= footprint {}", summary.smem_elems),
                )),
            }
        }
        obligations.push(prove_interval_race_free(
            interval.label.as_str(),
            &interval.accesses,
        ));
    }

    KernelProof {
        label: summary.label.clone(),
        obligations,
    }
}

/// Race-freedom of one barrier interval.
///
/// Two rules, both sufficient:
///
/// * **WW**: every write site must be injective (distinct iteration
///   points — hence distinct threads — hit distinct elements) or carry a
///   thread-ownership signature (each element is owned by exactly one
///   thread, so no two threads write it).
/// * **RW / cross-site WW**: for any write site paired with another
///   site whose element ranges overlap, both must carry *equal*
///   ownership signatures — then every conflicting pair is same-thread,
///   which the barrier semantics allow. Disjoint ranges need no proof.
///
/// Read-only intervals (e.g. the PCR read phase between the double
/// syncs) discharge vacuously — which is exactly why the base kernel
/// needs both barriers: collapsing them would merge the read interval
/// with the write interval, the `±s` displaced reads overlap the row
/// writes without a common owner, and this proof fails (see the
/// fixture tests).
fn prove_interval_race_free(label: &str, accesses: &[SmemAccess]) -> Obligation {
    let name = format!("race-free:{label}");
    let writes: Vec<&SmemAccess> = accesses.iter().filter(|a| a.is_write).collect();
    if writes.is_empty() {
        return Obligation::proven(name, "read-only interval".into());
    }
    for w in &writes {
        if !w.map.is_injective() && w.owner.is_none() {
            return Obligation::failed(
                name,
                format!("write {} is neither injective nor thread-owned", w.site),
            );
        }
        if !w.displacements.is_empty() {
            // A displaced write touches other threads' rows by design;
            // no ownership argument covers it.
            return Obligation::failed(name, format!("write {} is displaced", w.site));
        }
    }
    for w in &writes {
        for a in accesses {
            if std::ptr::eq(*w, a) {
                continue;
            }
            let (Some(w_max), Some(a_max)) = (w.max_elem(), a.max_elem()) else {
                continue; // empty access conflicts with nothing
            };
            let w_min = w.map.min_index().unwrap_or(0);
            let a_min = a.map.min_index().unwrap_or(0);
            // With a clamp the displaced row index can reach down to 0.
            let a_min = if a.clamp_row.is_some() { 0 } else { a_min };
            let overlap = w_min <= a_max && a_min <= w_max;
            if !overlap {
                continue;
            }
            match (w.owner, a.owner) {
                (Some(wo), Some(ao)) if wo == ao => {}
                _ => {
                    return Obligation::failed(
                        name,
                        format!(
                            "{} (write) overlaps {} without a common thread owner",
                            w.site, a.site
                        ),
                    );
                }
            }
        }
    }
    Obligation::proven(
        name,
        format!(
            "{} write site(s): injective or thread-owned; overlapping pairs share owners",
            writes.len()
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_core::kernels::access::{
        base_access_summary, AffineMap, BarrierInterval, SmemOwner,
    };
    use trisolve_core::kernels::base_config;
    use trisolve_core::BaseVariant;

    fn smem(site: &'static str, is_write: bool, map: AffineMap) -> SmemAccess {
        SmemAccess {
            site,
            is_write,
            map,
            displacements: Vec::new(),
            clamp_row: None,
            owner: None,
            thread_coeff: 1,
        }
    }

    #[test]
    fn base_kernel_proves_clean() {
        let s = base_access_summary(4, 2048, 256, 8, 32, BaseVariant::Strided);
        let cfg = base_config(32, 256, 8, 32, BaseVariant::Strided, 8);
        let proof = prove_kernel(&s, &cfg, 8);
        assert!(proof.proven(), "{:?}", proof.failures().collect::<Vec<_>>());
    }

    #[test]
    fn planted_oob_is_refuted() {
        let mut s = base_access_summary(4, 2048, 256, 8, 32, BaseVariant::Strided);
        // Stretch the store map one block past the buffer end.
        for g in &mut s.global {
            if g.is_write {
                g.map.offset += 1;
            }
        }
        let cfg = base_config(32, 256, 8, 32, BaseVariant::Strided, 8);
        let proof = prove_kernel(&s, &cfg, 8);
        assert!(proof.failures().any(|o| o.name == "oob-global:base::store"));
    }

    #[test]
    fn collapsed_barrier_races_are_refuted() {
        // Merge the PCR read and write phases into one interval — the
        // single-barrier bug the base kernel's double sync prevents.
        let read = SmemAccess {
            displacements: vec![-1, 0, 1],
            clamp_row: Some(256),
            ..smem(
                "pcr_read",
                false,
                AffineMap::at(0).term("t", 1, 256).term("k", 256, 4),
            )
        };
        let write = SmemAccess {
            owner: Some(SmemOwner {
                row_len: 256,
                modulus: 256,
            }),
            ..smem(
                "pcr_write",
                true,
                AffineMap::at(0).term("t", 1, 256).term("k", 256, 4),
            )
        };
        let iv = BarrierInterval {
            label: "collapsed".into(),
            accesses: vec![read, write],
        };
        let ob = prove_interval_race_free("collapsed", &iv.accesses);
        assert!(!ob.proven, "{}", ob.detail);
    }

    #[test]
    fn non_injective_unowned_write_is_refuted() {
        // Two threads per element: coeff 0 thread term.
        let w = smem(
            "bad",
            true,
            AffineMap::at(0).term("t", 0, 2).term("j", 1, 64),
        );
        let ob = prove_interval_race_free("bad", &[w]);
        assert!(!ob.proven);
    }

    #[test]
    fn smem_overflow_is_refuted() {
        let mut s = base_access_summary(1, 256, 256, 1, 32, BaseVariant::Strided);
        s.smem_elems = 2 * 256; // pretend only half the arrays were declared
        let cfg = base_config(1, 256, 1, 32, BaseVariant::Strided, 8);
        let proof = prove_kernel(&s, &cfg, 8);
        assert!(proof.failures().any(|o| o.name.starts_with("oob-smem:")));
    }

    #[test]
    fn same_owner_read_write_overlap_is_proven() {
        // The Thomas interval shape: read all arrays, write the d-array,
        // both partitioned by the same interleaved sub-chains.
        let owner = Some(SmemOwner {
            row_len: 64,
            modulus: 8,
        });
        let read = SmemAccess {
            owner,
            ..smem(
                "r",
                false,
                AffineMap::at(0)
                    .term("t", 1, 8)
                    .term("i", 8, 8)
                    .term("k", 64, 4),
            )
        };
        let write = SmemAccess {
            owner,
            ..smem(
                "w",
                true,
                AffineMap::at(3 * 64).term("t", 1, 8).term("i", 8, 8),
            )
        };
        let ob = prove_interval_race_free("thomas", &[read, write]);
        assert!(ob.proven, "{}", ob.detail);
    }
}
