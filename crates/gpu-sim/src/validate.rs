//! Static launch-configuration validation: a `compute-sanitizer`-style
//! *pre-flight* check that inspects a [`LaunchConfig`] against the
//! **queryable** device properties before any kernel runs.
//!
//! The pass mirrors the hard limits enforced at launch time by
//! [`crate::timing::residency`] — zero-sized grids/blocks, grid and block
//! caps, shared memory per block, register file pressure — but reports them
//! as *structured diagnostics* instead of failing the launch, so a plan
//! builder can validate an entire kernel sequence up front and surface every
//! problem at once. On top of the hard errors it adds advisory **warnings**:
//! a block size that is not a multiple of the warp width, an occupancy
//! estimate below 25 %, and a grid too small to cover every processor.
//!
//! Deliberately, only [`QueryableProps`] informs this pass: validation must
//! work from exactly the information CUDA's `deviceProperties` exposes (the
//! paper's Table II), preserving the information asymmetry between the
//! static machine-query tuner and the measuring dynamic tuner.

use crate::device::QueryableProps;
use crate::launch::LaunchConfig;

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiagLevel {
    /// Advisory: the launch will run but may perform poorly.
    Warning,
    /// Fatal: the launch cannot execute on this device.
    Error,
}

impl std::fmt::Display for DiagLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiagLevel::Warning => write!(f, "warning"),
            DiagLevel::Error => write!(f, "error"),
        }
    }
}

/// One finding of the static validator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity.
    pub level: DiagLevel,
    /// Stable machine-readable code (e.g. `"smem-exceeded"`).
    pub code: &'static str,
    /// Label of the offending kernel launch.
    pub kernel: String,
    /// Human-readable explanation with the numbers involved.
    pub message: String,
}

impl Diagnostic {
    /// Stable site identifier `"<kernel>:<code>"` — the join key between
    /// static-validation findings, analyzer proof obligations and dynamic
    /// sanitizer hazards (all of which carry the kernel label).
    pub fn site(&self) -> String {
        format!("{}:{}", self.kernel, self.code)
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.level, self.code, self.kernel, self.message
        )
    }
}

/// The findings of validating one or more launch configurations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// All findings, in the order the configurations were checked.
    pub diagnostics: Vec<Diagnostic>,
}

impl ValidationReport {
    /// No findings at all (not even warnings).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True if any finding is fatal.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.level == DiagLevel::Error)
    }

    /// The fatal findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.level == DiagLevel::Error)
    }

    /// The advisory findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.level == DiagLevel::Warning)
    }

    /// Append the findings of `other`, dropping exact duplicates
    /// (identical level/code/kernel/message) already present: a plan that
    /// launches the same configuration repeatedly (e.g. one stage-1 step
    /// per split) would otherwise report the same finding once per launch.
    pub fn merge(&mut self, other: ValidationReport) {
        for d in other.diagnostics {
            if !self.diagnostics.contains(&d) {
                self.diagnostics.push(d);
            }
        }
    }
}

impl std::fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "launch validation: clean");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

// A rejected report is the cause of `CoreError::PlanRejected`, so it
// participates in `source()` chains.
impl std::error::Error for ValidationReport {}

/// Estimate the occupancy (resident warps over the device's warp capacity)
/// this configuration achieves on `q`. Returns `None` when the configuration
/// has a fatal problem that makes the estimate meaningless.
pub fn occupancy_estimate(q: &QueryableProps, cfg: &LaunchConfig) -> Option<f64> {
    if cfg.block_threads == 0 || cfg.block_threads > q.max_threads_per_block {
        return None;
    }
    let regs_block = cfg.regs_per_thread * cfg.block_threads;
    if cfg.shared_mem_bytes > q.shared_mem_per_sm_bytes || regs_block > q.registers_per_sm {
        return None;
    }
    let by_threads = q.max_threads_per_sm / cfg.block_threads;
    let by_regs = q
        .registers_per_sm
        .checked_div(regs_block)
        .unwrap_or(q.max_blocks_per_sm);
    let by_shmem = q
        .shared_mem_per_sm_bytes
        .checked_div(cfg.shared_mem_bytes)
        .unwrap_or(q.max_blocks_per_sm);
    let blocks = q
        .max_blocks_per_sm
        .min(by_threads)
        .min(by_regs)
        .min(by_shmem);
    let warps_per_block = cfg.block_threads.div_ceil(q.warp_size);
    let resident = (blocks * warps_per_block * q.warp_size) as f64;
    Some(resident / q.max_threads_per_sm as f64)
}

/// Occupancy below this fraction of the device's warp capacity draws a
/// `low-occupancy` warning.
pub const LOW_OCCUPANCY_THRESHOLD: f64 = 0.25;

/// Validate a single launch configuration against queryable device limits.
pub fn validate_launch(q: &QueryableProps, cfg: &LaunchConfig) -> ValidationReport {
    let mut report = ValidationReport::default();
    let push = |report: &mut ValidationReport, level, code, message: String| {
        report.diagnostics.push(Diagnostic {
            level,
            code,
            kernel: cfg.label.clone(),
            message,
        });
    };

    if cfg.grid_blocks == 0 {
        push(
            &mut report,
            DiagLevel::Error,
            "zero-grid",
            "grid has zero blocks".into(),
        );
    }
    if cfg.block_threads == 0 {
        push(
            &mut report,
            DiagLevel::Error,
            "zero-block",
            "block has zero threads".into(),
        );
    }
    if cfg.grid_blocks > q.max_grid_blocks {
        push(
            &mut report,
            DiagLevel::Error,
            "grid-too-large",
            format!(
                "{} blocks exceeds device limit {}",
                cfg.grid_blocks, q.max_grid_blocks
            ),
        );
    }
    if cfg.block_threads > q.max_threads_per_block {
        push(
            &mut report,
            DiagLevel::Error,
            "block-too-large",
            format!(
                "{} threads/block exceeds device limit {}",
                cfg.block_threads, q.max_threads_per_block
            ),
        );
    }
    if cfg.shared_mem_bytes > q.shared_mem_per_sm_bytes {
        push(
            &mut report,
            DiagLevel::Error,
            "smem-exceeded",
            format!(
                "{} shared bytes/block exceeds the {}-byte SM budget",
                cfg.shared_mem_bytes, q.shared_mem_per_sm_bytes
            ),
        );
    }
    let regs_block = cfg.regs_per_thread.saturating_mul(cfg.block_threads);
    if regs_block > q.registers_per_sm {
        push(
            &mut report,
            DiagLevel::Error,
            "regs-exceeded",
            format!(
                "{} regs/thread x {} threads = {} exceeds the {}-register file",
                cfg.regs_per_thread, cfg.block_threads, regs_block, q.registers_per_sm
            ),
        );
    }
    if report.has_errors() {
        return report;
    }

    // Advisory checks only make sense for a launch that can run at all.
    if !cfg.block_threads.is_multiple_of(q.warp_size) {
        push(
            &mut report,
            DiagLevel::Warning,
            "warp-misaligned",
            format!(
                "{} threads/block is not a multiple of the {}-wide warp; \
                 the last warp runs partially filled",
                cfg.block_threads, q.warp_size
            ),
        );
    }
    match occupancy_estimate(q, cfg) {
        Some(occ) if occ < LOW_OCCUPANCY_THRESHOLD => {
            push(
                &mut report,
                DiagLevel::Warning,
                "low-occupancy",
                format!(
                    "estimated occupancy {:.0}% is below {:.0}%; \
                     too few resident warps to hide memory latency",
                    occ * 100.0,
                    LOW_OCCUPANCY_THRESHOLD * 100.0
                ),
            );
        }
        Some(_) => {}
        // The estimate refuses configurations it considers fatal (zero
        // threads, oversubscribed shared memory or registers). Every such
        // configuration already carries a hard error above and never
        // reaches this point — but if the two ever drift, refusing the
        // launch outright beats silently skipping the occupancy check.
        None => {
            push(
                &mut report,
                DiagLevel::Error,
                "block-too-small",
                format!(
                    "occupancy is undefined for a {}-thread block; \
                     the launch cannot be assessed and is refused",
                    cfg.block_threads
                ),
            );
        }
    }
    if cfg.grid_blocks < q.num_processors {
        push(
            &mut report,
            DiagLevel::Warning,
            "idle-sms",
            format!(
                "grid of {} blocks leaves {} of {} processors idle",
                cfg.grid_blocks,
                q.num_processors - cfg.grid_blocks,
                q.num_processors
            ),
        );
    }
    report
}

/// Validate a sequence of launches, concatenating the findings.
pub fn validate_launches(q: &QueryableProps, cfgs: &[LaunchConfig]) -> ValidationReport {
    let mut report = ValidationReport::default();
    for cfg in cfgs {
        report.merge(validate_launch(q, cfg));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    fn q() -> QueryableProps {
        DeviceSpec::gtx_470().queryable().clone()
    }

    #[test]
    fn clean_config_has_no_diagnostics() {
        let cfg = LaunchConfig::new("k", 2048, 256).with_regs(16);
        let r = validate_launch(&q(), &cfg);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn zero_grid_and_block_are_errors() {
        let r = validate_launch(&q(), &LaunchConfig::new("k", 0, 0));
        assert!(r.has_errors());
        let codes: Vec<_> = r.errors().map(|d| d.code).collect();
        assert!(codes.contains(&"zero-grid"));
        assert!(codes.contains(&"zero-block"));
    }

    #[test]
    fn resource_limits_mirror_residency_errors() {
        let dev = q();
        let cases = [
            (
                LaunchConfig::new("g", dev.max_grid_blocks + 1, 64),
                "grid-too-large",
            ),
            (
                LaunchConfig::new("t", 1, dev.max_threads_per_block + 1),
                "block-too-large",
            ),
            (
                LaunchConfig::new("s", 1, 64).with_shared_mem(dev.shared_mem_per_sm_bytes + 1),
                "smem-exceeded",
            ),
            (
                LaunchConfig::new("r", 1, dev.max_threads_per_block)
                    .with_regs(dev.registers_per_sm / dev.max_threads_per_block + 1),
                "regs-exceeded",
            ),
        ];
        for (cfg, code) in cases {
            let r = validate_launch(&dev, &cfg);
            assert!(
                r.errors().any(|d| d.code == code),
                "expected {code} for {}: {r}",
                cfg.label
            );
            // The launch-time check must agree that this config is fatal.
            assert!(crate::timing::residency(&DeviceSpec::gtx_470(), &cfg).is_err());
        }
    }

    #[test]
    fn diagnostics_carry_kernel_label() {
        let cfg = LaunchConfig::new("stage1[stride=4]", 0, 64);
        let r = validate_launch(&q(), &cfg);
        assert!(r.diagnostics.iter().all(|d| d.kernel == "stage1[stride=4]"));
    }

    #[test]
    fn warp_misalignment_is_a_warning() {
        let cfg = LaunchConfig::new("k", 2048, 100);
        let r = validate_launch(&q(), &cfg);
        assert!(!r.has_errors());
        assert!(r.warnings().any(|d| d.code == "warp-misaligned"));
    }

    #[test]
    fn low_occupancy_flagged() {
        // One 64-thread block per SM at 24 regs: shared memory caps residency.
        let dev = q();
        let cfg = LaunchConfig::new("k", 2048, 64)
            .with_shared_mem(dev.shared_mem_per_sm_bytes)
            .with_regs(24);
        let occ = occupancy_estimate(&dev, &cfg).unwrap();
        assert!(occ < LOW_OCCUPANCY_THRESHOLD, "occ {occ}");
        let r = validate_launch(&dev, &cfg);
        assert!(r.warnings().any(|d| d.code == "low-occupancy"));
    }

    #[test]
    fn small_grid_warns_about_idle_sms() {
        let cfg = LaunchConfig::new("k", 2, 256);
        let r = validate_launch(&q(), &cfg);
        assert!(r.warnings().any(|d| d.code == "idle-sms"));
    }

    #[test]
    fn occupancy_estimate_none_for_fatal_configs() {
        let dev = q();
        assert!(occupancy_estimate(&dev, &LaunchConfig::new("k", 1, 0)).is_none());
        assert!(occupancy_estimate(
            &dev,
            &LaunchConfig::new("k", 1, 64).with_shared_mem(dev.shared_mem_per_sm_bytes + 1)
        )
        .is_none());
    }

    #[test]
    fn occupancy_estimate_full_block() {
        // 256 threads, 16 regs, no smem on the 470: 6 blocks by threads,
        // 8 by regs, cap 8 -> 6 blocks = 1536 threads = 100%.
        let occ = occupancy_estimate(&q(), &LaunchConfig::new("k", 64, 256)).unwrap();
        assert!((occ - 1.0).abs() < 1e-12, "occ {occ}");
    }

    #[test]
    fn validate_launches_concatenates() {
        let dev = q();
        let cfgs = [
            LaunchConfig::new("a", 0, 64),
            LaunchConfig::new("b", 2048, 256),
            LaunchConfig::new("c", 1, 0),
        ];
        let r = validate_launches(&dev, &cfgs);
        assert_eq!(r.errors().count(), 2);
    }

    #[test]
    fn merge_deduplicates_identical_findings() {
        let dev = q();
        // The same invalid configuration validated twice must report its
        // findings once, not once per launch.
        let cfg = LaunchConfig::new("k", 0, 64);
        let r = validate_launches(&dev, &[cfg.clone(), cfg]);
        assert_eq!(r.errors().count(), 1);
        // Distinct kernels with the same code are NOT duplicates.
        let r2 = validate_launches(
            &dev,
            &[LaunchConfig::new("a", 0, 64), LaunchConfig::new("b", 0, 64)],
        );
        assert_eq!(r2.errors().count(), 2);
    }

    #[test]
    fn diagnostic_site_joins_kernel_and_code() {
        let r = validate_launch(&q(), &LaunchConfig::new("base[256@8]", 0, 64));
        let sites: Vec<_> = r.errors().map(Diagnostic::site).collect();
        assert_eq!(sites, vec!["base[256@8]:zero-grid".to_string()]);
    }

    #[test]
    fn occupancy_is_never_silently_skipped() {
        // Invariant behind the `block-too-small` arm: every configuration
        // either passes the hard-error phase with a defined occupancy
        // estimate, or carries an error — the advisory occupancy check can
        // never be skipped silently.
        let dev = q();
        for grid in [0usize, 1, 14, 1 << 16] {
            for threads in [0usize, 1, 100, 256, 1024, 2048] {
                for smem in [0usize, 1 << 10, dev.shared_mem_per_sm_bytes + 1] {
                    for regs in [0usize, 16, 64] {
                        let cfg = LaunchConfig::new("k", grid, threads)
                            .with_shared_mem(smem)
                            .with_regs(regs);
                        let r = validate_launch(&dev, &cfg);
                        assert!(
                            r.has_errors() || occupancy_estimate(&dev, &cfg).is_some(),
                            "silent skip for {cfg:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn report_display_lists_findings() {
        let r = validate_launch(&q(), &LaunchConfig::new("k", 0, 64));
        let s = r.to_string();
        assert!(s.contains("zero-grid"), "{s}");
        assert!(ValidationReport::default().to_string().contains("clean"));
    }
}
