//! The analytic SM-scheduler timing model: converts a launch's metered costs
//! into simulated seconds.
//!
//! The model captures the first-order effects the paper's tuning decisions
//! trade against each other (§III-D):
//!
//! * **residency** — blocks per SM limited by threads, registers and shared
//!   memory; determines how many warps are available to hide latency;
//! * **stalls** — when the resident warps (scaled by the block-overlap
//!   factor, which penalises single-resident-block barriers) fall short of
//!   the device's `hide_warps`, execution cycles inflate proportionally;
//! * **bandwidth floor** — a kernel can never finish faster than its
//!   transaction bytes at the achievable bandwidth, itself derated when the
//!   grid leaves processors idle or occupancy is too low to saturate the
//!   memory system;
//! * **launch overhead** — the fixed per-launch cost that makes the paper's
//!   stage-1 (one launch per split) expensive.

use crate::cost::{CostCounters, KernelStats, LimitedBy, Residency};
use crate::device::DeviceSpec;
use crate::error::SimError;
use crate::launch::LaunchConfig;

/// Compute the per-SM residency of a launch, or fail if the configuration
/// cannot run on the device at all.
pub fn residency(spec: &DeviceSpec, cfg: &LaunchConfig) -> Result<Residency, SimError> {
    let q = spec.queryable();
    if cfg.grid_blocks == 0 {
        return Err(SimError::InvalidLaunch {
            detail: "grid has zero blocks".into(),
        });
    }
    if cfg.block_threads == 0 {
        return Err(SimError::InvalidLaunch {
            detail: "block has zero threads".into(),
        });
    }
    if cfg.grid_blocks > q.max_grid_blocks {
        return Err(SimError::LaunchTooLarge {
            resource: "grid blocks",
            requested: cfg.grid_blocks,
            limit: q.max_grid_blocks,
        });
    }
    if cfg.block_threads > q.max_threads_per_block {
        return Err(SimError::LaunchTooLarge {
            resource: "threads per block",
            requested: cfg.block_threads,
            limit: q.max_threads_per_block,
        });
    }
    if cfg.shared_mem_bytes > q.shared_mem_per_sm_bytes {
        return Err(SimError::LaunchTooLarge {
            resource: "shared memory bytes",
            requested: cfg.shared_mem_bytes,
            limit: q.shared_mem_per_sm_bytes,
        });
    }
    let regs_block = cfg.regs_per_thread * cfg.block_threads;
    if regs_block > q.registers_per_sm {
        return Err(SimError::LaunchTooLarge {
            resource: "registers per block",
            requested: regs_block,
            limit: q.registers_per_sm,
        });
    }

    let by_threads = q.max_threads_per_sm / cfg.block_threads;
    let by_regs = q
        .registers_per_sm
        .checked_div(regs_block)
        .unwrap_or(q.max_blocks_per_sm);
    let by_shmem = q
        .shared_mem_per_sm_bytes
        .checked_div(cfg.shared_mem_bytes)
        .unwrap_or(q.max_blocks_per_sm);
    let candidates = [
        (q.max_blocks_per_sm, "max blocks"),
        (by_threads, "threads"),
        (by_regs, "registers"),
        (by_shmem, "shared memory"),
    ];
    let (blocks, limited_by) = candidates
        .iter()
        .copied()
        .min_by_key(|(v, _)| *v)
        .expect("non-empty");

    let warps_per_block = cfg.block_threads.div_ceil(q.warp_size);
    Ok(Residency {
        blocks_per_sm: blocks,
        warps_per_sm: blocks * warps_per_block,
        limited_by,
    })
}

/// Convert per-block metered costs into a [`KernelStats`] record.
pub fn kernel_time(
    spec: &DeviceSpec,
    cfg: &LaunchConfig,
    per_block: &[CostCounters],
) -> Result<KernelStats, SimError> {
    let res = residency(spec, cfg)?;
    let q = spec.queryable();
    let h = spec.hidden();

    let mut totals = CostCounters::default();
    for b in per_block {
        totals.add(b);
    }

    // --- Execution component: round-robin blocks onto SMs, sum cycles per
    // SM, take the slowest SM, inflate by the occupancy stall factor.
    let num_sms = q.num_processors;
    let mut sm_cycles = vec![0.0f64; num_sms];
    for (i, b) in per_block.iter().enumerate() {
        let compute = b.thread_ops / q.thread_procs_per_sm as f64;
        let smem = (b.smem_accesses + b.smem_conflict_accesses)
            / (h.shared_banks as f64 * h.bank_words_per_cycle);
        let barrier = b.barriers * h.barrier_cycles;
        let issue = b.gmem_warp_txns * h.txn_issue_cycles;
        sm_cycles[i % num_sms] += compute + smem + barrier + issue;
    }
    let active_sms = cfg.grid_blocks.min(num_sms);
    let resident_warps = res.warps_per_sm as f64;
    let eff_warps = resident_warps * h.overlap(res.blocks_per_sm);
    let stall = (h.hide_warps / eff_warps).max(1.0);
    let clock_hz = h.core_clock_ghz * 1e9;
    let max_sm_cycles = sm_cycles.iter().cloned().fold(0.0, f64::max);
    let exec_s = max_sm_cycles * stall / clock_hz;

    // --- Bandwidth floor: transaction bytes over the achievable bandwidth,
    // derated when the machine is not filled (few blocks / low occupancy).
    let machine_warps = (active_sms * res.warps_per_sm)
        .min(cfg.grid_blocks * res.warps_per_sm / res.blocks_per_sm.max(1))
        as f64;
    let warps_wanted = h.hide_warps * num_sms as f64;
    let utilization = (machine_warps / warps_wanted).min(1.0);
    let bw = h.mem_bandwidth_gbps * 1e9 * h.achievable_bw_fraction * utilization.max(1e-6);
    let bw_s = totals.gmem_txn_bytes / bw;

    // --- Latency tail: one memory round-trip that cannot be hidden.
    let tail_s = h.mem_latency_cycles / clock_hz;

    let exec_total = exec_s.max(bw_s) + tail_s;
    let overhead_s = h.launch_overhead_us * 1e-6;
    let limited_by = if overhead_s > exec_total {
        LimitedBy::Overhead
    } else if bw_s >= exec_s {
        LimitedBy::Bandwidth
    } else {
        LimitedBy::Execution
    };

    Ok(KernelStats {
        label: cfg.label.clone(),
        grid_blocks: cfg.grid_blocks,
        block_threads: cfg.block_threads,
        residency: res,
        totals,
        exec_time_s: exec_total,
        overhead_s,
        limited_by,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(grid: usize, threads: usize) -> LaunchConfig {
        LaunchConfig::new("test", grid, threads)
    }

    #[test]
    fn residency_limited_by_threads() {
        let d = DeviceSpec::gtx_470(); // 1536 threads/SM
        let r = residency(&d, &cfg(100, 512).with_regs(8)).unwrap();
        assert_eq!(r.blocks_per_sm, 3);
        assert_eq!(r.limited_by, "threads");
        assert_eq!(r.warps_per_sm, 48);
    }

    #[test]
    fn residency_limited_by_registers() {
        let d = DeviceSpec::gtx_470(); // 32K regs
        let r = residency(&d, &cfg(100, 512).with_regs(24)).unwrap();
        // 512*24 = 12288 regs/block -> 2 blocks.
        assert_eq!(r.blocks_per_sm, 2);
        assert_eq!(r.limited_by, "registers");
    }

    #[test]
    fn residency_limited_by_shared_memory() {
        let d = DeviceSpec::gtx_280(); // 16 KB shared
        let r = residency(&d, &cfg(100, 64).with_regs(8).with_shared_mem(9 * 1024)).unwrap();
        assert_eq!(r.blocks_per_sm, 1);
        assert_eq!(r.limited_by, "shared memory");
    }

    #[test]
    fn oversized_launches_rejected() {
        let d = DeviceSpec::geforce_8800_gtx();
        assert!(matches!(
            residency(&d, &cfg(1, 1024)),
            Err(SimError::LaunchTooLarge {
                resource: "threads per block",
                ..
            })
        ));
        assert!(matches!(
            residency(&d, &cfg(1, 64).with_shared_mem(17 * 1024)),
            Err(SimError::LaunchTooLarge {
                resource: "shared memory bytes",
                ..
            })
        ));
        assert!(matches!(
            residency(&d, &cfg(1, 512).with_regs(64)),
            Err(SimError::LaunchTooLarge {
                resource: "registers per block",
                ..
            })
        ));
        assert!(matches!(
            residency(&d, &cfg(0, 64)),
            Err(SimError::InvalidLaunch { .. })
        ));
        assert!(matches!(
            residency(&d, &cfg(1, 0)),
            Err(SimError::InvalidLaunch { .. })
        ));
        assert!(matches!(
            residency(&d, &cfg(65_535 * 65_535 + 1, 64)),
            Err(SimError::LaunchTooLarge {
                resource: "grid blocks",
                ..
            })
        ));
    }

    #[test]
    fn streaming_kernel_is_bandwidth_limited() {
        let d = DeviceSpec::gtx_470();
        // Plenty of blocks, almost no compute, lots of traffic.
        let per_block: Vec<CostCounters> = (0..1024)
            .map(|_| CostCounters {
                gmem_read_bytes: 1_000_000.0,
                gmem_txn_bytes: 1_000_000.0,
                gmem_warp_txns: 100.0,
                thread_ops: 10.0,
                ..Default::default()
            })
            .collect();
        let stats = kernel_time(&d, &cfg(1024, 256).with_regs(8), &per_block).unwrap();
        assert_eq!(stats.limited_by, LimitedBy::Bandwidth);
        // 1 GB at ~93.7 GB/s achievable ≈ 10.9 ms.
        let expect = 1024.0 * 1e6 / (133.9e9 * 0.70);
        assert!((stats.exec_time_s - expect).abs() / expect < 0.05);
    }

    #[test]
    fn compute_kernel_is_execution_limited() {
        let d = DeviceSpec::gtx_470();
        let per_block: Vec<CostCounters> = (0..1024)
            .map(|_| CostCounters {
                thread_ops: 1_000_000.0,
                ..Default::default()
            })
            .collect();
        let stats = kernel_time(&d, &cfg(1024, 256).with_regs(8), &per_block).unwrap();
        assert_eq!(stats.limited_by, LimitedBy::Execution);
    }

    #[test]
    fn tiny_kernel_is_overhead_limited() {
        let d = DeviceSpec::gtx_470();
        let per_block = vec![CostCounters {
            thread_ops: 10.0,
            ..Default::default()
        }];
        let stats = kernel_time(&d, &cfg(1, 32), &per_block).unwrap();
        assert_eq!(stats.limited_by, LimitedBy::Overhead);
        assert!(stats.overhead_s > stats.exec_time_s);
    }

    #[test]
    fn small_grids_underutilize_bandwidth() {
        let d = DeviceSpec::gtx_470();
        let mk = |grid: usize| {
            let per_block: Vec<CostCounters> = (0..grid)
                .map(|_| CostCounters {
                    gmem_read_bytes: 64_000_000.0 / grid as f64,
                    gmem_txn_bytes: 64_000_000.0 / grid as f64,
                    gmem_warp_txns: 100.0,
                    ..Default::default()
                })
                .collect();
            kernel_time(&d, &cfg(grid, 256).with_regs(8), &per_block)
                .unwrap()
                .exec_time_s
        };
        // Same total traffic, fewer blocks => slower (cannot saturate).
        let t_full = mk(1024);
        let t_small = mk(8);
        assert!(
            t_small > 1.5 * t_full,
            "8-block streaming ({t_small:.2e}s) should be much slower than 1024-block ({t_full:.2e}s)"
        );
    }

    #[test]
    fn low_occupancy_stalls_execution() {
        let d = DeviceSpec::gtx_470();
        // Same per-block work; one config resident-limited to 32 warps of a
        // single block (poor overlap), the other with 8 blocks of 64 threads.
        let work = CostCounters {
            thread_ops: 100_000.0,
            smem_accesses: 50_000.0,
            ..Default::default()
        };
        let t_one_block = kernel_time(&d, &cfg(14, 1024).with_regs(24), &vec![work; 14])
            .unwrap()
            .exec_time_s;
        let t_many = kernel_time(
            &d,
            &cfg(14 * 8, 128).with_regs(24),
            &vec![
                CostCounters {
                    thread_ops: 100_000.0 / 8.0,
                    smem_accesses: 50_000.0 / 8.0,
                    ..Default::default()
                };
                14 * 8
            ],
        )
        .unwrap()
        .exec_time_s;
        // Same total work per SM; the single-big-block version pays the
        // single-resident-block overlap penalty.
        assert!(
            t_one_block > t_many,
            "one-block {t_one_block:.3e} vs many {t_many:.3e}"
        );
    }

    #[test]
    fn launch_overhead_constant_per_launch() {
        let d = DeviceSpec::geforce_8800_gtx();
        let per_block = vec![CostCounters::default(); 14];
        let s = kernel_time(&d, &cfg(14, 64), &per_block).unwrap();
        assert!((s.overhead_s - 12e-6).abs() < 1e-12);
    }
}
