#![warn(missing_docs)]

//! # trisolve-gpu-sim
//!
//! A *functional* GPU machine simulator: the hardware substitute for the
//! CUDA GPUs the paper runs on (see DESIGN.md §2).
//!
//! Kernels are ordinary Rust closures executed once per block over real
//! buffers, so they produce numerically correct results that the test suites
//! verify against the CPU reference algorithms. While a kernel runs it meters
//! its own memory traffic, arithmetic and synchronisation through a
//! [`BlockCtx`]; an analytic SM-scheduler model then converts the meters into
//! simulated milliseconds, accounting for the first-order effects every GPU
//! performance paper models:
//!
//! * **residency/occupancy** — how many blocks fit on a processor at once,
//!   limited by threads, registers and shared memory;
//! * **latency hiding** — too few resident warps ⇒ stalls;
//! * **coalescing** — strided global access wastes transaction bandwidth;
//! * **shared-memory banking** — conflicting accesses serialise;
//! * **launch overhead** — each kernel launch (the paper's stage-1 global
//!   synchronisation) costs a fixed latency.
//!
//! The device descriptions split into a **queryable** part — exactly the
//! fields CUDA's `deviceProperties` exposes (paper Table II) — and a
//! **hidden** part (memory bandwidth, bank organisation, latency constants)
//! that the paper notes *cannot* be queried. The static machine-query tuner
//! is only given the queryable part; the dynamic tuner can measure simulated
//! time. This reproduces the information asymmetry that drives the paper's
//! central result.

pub mod cost;
pub mod cpu;
pub mod device;
pub mod error;
pub mod fault;
pub mod launch;
pub mod memory;
pub mod sanitizer;
pub mod timing;
pub mod validate;

pub use cost::{CostCounters, KernelStats, LimitedBy};
pub use cpu::CpuSpec;
pub use device::{DeviceSpec, HiddenProps, QueryableProps};
pub use error::SimError;
pub use fault::{FaultInjector, FaultKind, FaultLog, FaultPlan, FaultRecord};
pub use launch::{BlockCtx, BlockIo, BlockOut, LaunchConfig, OutMode, ScatterWriter};
pub use memory::{BufferId, DeviceBuffer, Gpu, ProfileEntry};
pub use sanitizer::{AccessSite, Hazard, HazardKind, Region, SanitizerReport};
pub use validate::{
    occupancy_estimate, validate_launch, validate_launches, DiagLevel, Diagnostic, ValidationReport,
};

/// Element types storable in simulated device memory.
pub trait Element: Copy + Send + Sync + Default + std::fmt::Debug + 'static {
    /// Size of the element in bytes (drives the traffic model).
    const BYTES: usize;

    /// The value with one storage bit flipped (`bit` taken modulo the bit
    /// width): the fault injector's ECC-corruption primitive.
    #[must_use]
    fn flip_bit(self, bit: u32) -> Self;
}

macro_rules! impl_element_float {
    ($($t:ty => $bits:ty),*) => {
        $(impl Element for $t {
            const BYTES: usize = std::mem::size_of::<$t>();

            fn flip_bit(self, bit: u32) -> Self {
                let mask = (1 as $bits) << (bit % (8 * Self::BYTES as u32));
                Self::from_bits(self.to_bits() ^ mask)
            }
        })*
    };
}

macro_rules! impl_element_int {
    ($($t:ty),*) => {
        $(impl Element for $t {
            const BYTES: usize = std::mem::size_of::<$t>();

            fn flip_bit(self, bit: u32) -> Self {
                self ^ ((1 as $t) << (bit % (8 * Self::BYTES as u32)))
            }
        })*
    };
}

impl_element_float!(f32 => u32, f64 => u64);
impl_element_int!(u32, u64, i32, i64);

#[cfg(test)]
mod element_tests {
    use super::Element;

    #[test]
    fn flip_bit_is_an_involution_and_changes_the_value() {
        assert_eq!(1.0f32.flip_bit(3).flip_bit(3), 1.0);
        assert_ne!(1.0f32.flip_bit(31), 1.0); // sign bit
        assert_eq!(2.5f64.flip_bit(63).flip_bit(63), 2.5);
        assert_eq!(0u32.flip_bit(5), 32);
        assert_eq!((-7i64).flip_bit(64 + 2), (-7i64) ^ 4); // modulo width
    }
}
