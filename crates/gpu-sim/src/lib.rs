#![warn(missing_docs)]

//! # trisolve-gpu-sim
//!
//! A *functional* GPU machine simulator: the hardware substitute for the
//! CUDA GPUs the paper runs on (see DESIGN.md §2).
//!
//! Kernels are ordinary Rust closures executed once per block over real
//! buffers, so they produce numerically correct results that the test suites
//! verify against the CPU reference algorithms. While a kernel runs it meters
//! its own memory traffic, arithmetic and synchronisation through a
//! [`BlockCtx`]; an analytic SM-scheduler model then converts the meters into
//! simulated milliseconds, accounting for the first-order effects every GPU
//! performance paper models:
//!
//! * **residency/occupancy** — how many blocks fit on a processor at once,
//!   limited by threads, registers and shared memory;
//! * **latency hiding** — too few resident warps ⇒ stalls;
//! * **coalescing** — strided global access wastes transaction bandwidth;
//! * **shared-memory banking** — conflicting accesses serialise;
//! * **launch overhead** — each kernel launch (the paper's stage-1 global
//!   synchronisation) costs a fixed latency.
//!
//! The device descriptions split into a **queryable** part — exactly the
//! fields CUDA's `deviceProperties` exposes (paper Table II) — and a
//! **hidden** part (memory bandwidth, bank organisation, latency constants)
//! that the paper notes *cannot* be queried. The static machine-query tuner
//! is only given the queryable part; the dynamic tuner can measure simulated
//! time. This reproduces the information asymmetry that drives the paper's
//! central result.

pub mod cost;
pub mod cpu;
pub mod device;
pub mod error;
pub mod launch;
pub mod memory;
pub mod sanitizer;
pub mod timing;
pub mod validate;

pub use cost::{CostCounters, KernelStats, LimitedBy};
pub use cpu::CpuSpec;
pub use device::{DeviceSpec, HiddenProps, QueryableProps};
pub use error::SimError;
pub use launch::{BlockCtx, BlockIo, BlockOut, LaunchConfig, OutMode, ScatterWriter};
pub use memory::{BufferId, DeviceBuffer, Gpu, ProfileEntry};
pub use sanitizer::{AccessSite, Hazard, HazardKind, Region, SanitizerReport};
pub use validate::{
    occupancy_estimate, validate_launch, validate_launches, DiagLevel, Diagnostic, ValidationReport,
};

/// Element types storable in simulated device memory.
pub trait Element: Copy + Send + Sync + Default + std::fmt::Debug + 'static {
    /// Size of the element in bytes (drives the traffic model).
    const BYTES: usize;
}

macro_rules! impl_element {
    ($($t:ty),*) => {
        $(impl Element for $t {
            const BYTES: usize = std::mem::size_of::<$t>();
        })*
    };
}

impl_element!(f32, f64, u32, u64, i32, i64);
