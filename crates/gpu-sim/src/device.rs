//! Device descriptions: the queryable properties (paper Table II), the
//! hidden micro-architectural constants the paper notes cannot be queried,
//! and presets for the three GPUs of the paper's Table I.

use serde::{Deserialize, Serialize};

/// The subset of device properties a program can query at runtime — the
/// simulator's rendition of CUDA's `deviceProperties` (paper Table II).
///
/// The *static* (machine-query) tuner sees only this struct.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryableProps {
    /// Marketing name, e.g. `"GeForce GTX 470"`.
    pub name: String,
    /// Total global memory in bytes.
    pub global_mem_bytes: usize,
    /// Number of processors (streaming multiprocessors).
    pub num_processors: usize,
    /// Constant memory in bytes.
    pub constant_mem_bytes: usize,
    /// Shared memory per processor in bytes.
    pub shared_mem_per_sm_bytes: usize,
    /// 32-bit registers per processor.
    pub registers_per_sm: usize,
    /// Maximum number of blocks in a grid.
    pub max_grid_blocks: usize,
    /// Maximum threads in one block.
    pub max_threads_per_block: usize,
    /// Maximum resident threads per processor.
    pub max_threads_per_sm: usize,
    /// Maximum resident blocks per processor.
    pub max_blocks_per_sm: usize,
    /// Warp size (threads executing in lockstep); 32 on every NVIDIA GPU.
    pub warp_size: usize,
    /// Thread processors (lanes) per processor.
    pub thread_procs_per_sm: usize,
}

/// Micro-architectural constants a program **cannot** query — the paper's
/// §IV-C list: memory bandwidth ("dependent on the number of memory
/// controllers and the bus width"), the number of shared-memory banks, and
/// the bandwidth per bank — plus the latency/overhead constants any cost
/// model needs.
///
/// These drive the simulator's timing model. They are deliberately kept out
/// of [`QueryableProps`] so the static tuner is information-limited for the
/// same reason it is on real hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HiddenProps {
    /// Peak global memory bandwidth in GB/s (Table I values).
    pub mem_bandwidth_gbps: f64,
    /// Fraction of peak bandwidth a fully-occupied streaming kernel
    /// achieves in practice.
    pub achievable_bw_fraction: f64,
    /// Number of shared memory banks.
    pub shared_banks: usize,
    /// Words served per bank per cycle.
    pub bank_words_per_cycle: f64,
    /// Core (shader) clock in GHz.
    pub core_clock_ghz: f64,
    /// Global memory latency in core cycles.
    pub mem_latency_cycles: f64,
    /// Fixed cost of one kernel launch, in microseconds. This is the price
    /// of the paper's stage-1 global synchronisation.
    pub launch_overhead_us: f64,
    /// Resident warps per SM needed to fully hide memory latency.
    pub hide_warps: f64,
    /// Warp-overlap efficiency when only one block is resident on an SM:
    /// barriers idle the whole processor (`< 1`). With two resident blocks
    /// the other block covers the barrier, etc.
    pub block_overlap: [f64; 3],
    /// Minimum global-memory transaction size in bytes (coalescing floor):
    /// a fully-scattered access still moves this many bytes per element.
    pub min_transaction_bytes: f64,
    /// Cost of a block-wide barrier in cycles.
    pub barrier_cycles: f64,
    /// Issue cost, in cycles, of one 128-byte transaction slot. An
    /// uncoalesced warp access serialises into many slots, so this is the
    /// *latency-side* price of strided access (the bandwidth-side price is
    /// `min_transaction_bytes` waste).
    pub txn_issue_cycles: f64,
    /// Resident warps needed to hide *shared-memory/pipeline* latency in a
    /// serial phase (the Thomas stage). Roughly scales with the depth of the
    /// load/store pipeline; low on G80-class parts where shared memory is a
    /// direct ALU operand, higher on deeper-pipelined parts.
    pub smem_pipeline_warps: f64,
    /// Exposed latency, in cycles, of one *dependent* step of a serial
    /// phase when a block has too few active warps to interleave
    /// (division + shared-memory round-trip of one Thomas iteration).
    pub serial_dep_latency_cycles: f64,
    /// Fraction of *redundant* global reads (overlapping neighbour streams
    /// staged through shared memory or caught by the texture/L1 cache) that
    /// do not reach the memory bus. Higher on cached parts.
    pub read_reuse_fraction: f64,
}

impl HiddenProps {
    /// Overlap efficiency for `resident` blocks per SM.
    pub fn overlap(&self, resident: usize) -> f64 {
        match resident {
            0 => 0.0,
            1 => self.block_overlap[0],
            2 => self.block_overlap[1],
            _ => self.block_overlap[2],
        }
    }
}

/// A complete simulated device: public face plus hidden constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    query: QueryableProps,
    hidden: HiddenProps,
}

impl DeviceSpec {
    /// Assemble a device from its two halves (used by presets and by the
    /// calibration tests).
    pub fn from_parts(query: QueryableProps, hidden: HiddenProps) -> Self {
        Self { query, hidden }
    }

    /// The runtime-queryable properties — all a static tuner may see.
    pub fn queryable(&self) -> &QueryableProps {
        &self.query
    }

    /// Hidden micro-architectural constants.
    ///
    /// Only the simulator's own timing model (and calibration tooling) may
    /// use these. Tuning code must not: on the real hardware this
    /// information does not exist at runtime, and the paper's comparison of
    /// static vs. dynamic tuning depends on that asymmetry. The autotuners
    /// in `trisolve-autotune` take [`QueryableProps`] only.
    pub fn hidden(&self) -> &HiddenProps {
        &self.hidden
    }

    /// Mutable access to the hidden constants, for calibration experiments.
    pub fn hidden_mut(&mut self) -> &mut HiddenProps {
        &mut self.hidden
    }

    /// Short device name.
    pub fn name(&self) -> &str {
        &self.query.name
    }

    /// All three paper devices (Table I order).
    pub fn paper_devices() -> Vec<DeviceSpec> {
        vec![Self::geforce_8800_gtx(), Self::gtx_280(), Self::gtx_470()]
    }

    /// GeForce 8800 GTX (G80, 2006): Table I row 1 — 57.6 GB/s, 16 KB shared
    /// memory, 14 processors, 8 thread processors each.
    pub fn geforce_8800_gtx() -> Self {
        Self {
            query: QueryableProps {
                name: "GeForce 8800 GTX".into(),
                global_mem_bytes: 768 * 1024 * 1024,
                num_processors: 14,
                constant_mem_bytes: 64 * 1024,
                shared_mem_per_sm_bytes: 16 * 1024,
                registers_per_sm: 8 * 1024,
                max_grid_blocks: 65_535 * 65_535,
                max_threads_per_block: 512,
                max_threads_per_sm: 768,
                max_blocks_per_sm: 8,
                warp_size: 32,
                thread_procs_per_sm: 8,
            },
            hidden: HiddenProps {
                mem_bandwidth_gbps: 57.6,
                achievable_bw_fraction: 0.62,
                shared_banks: 16,
                bank_words_per_cycle: 1.0,
                core_clock_ghz: 1.35,
                mem_latency_cycles: 500.0,
                launch_overhead_us: 12.0,
                hide_warps: 6.0,
                block_overlap: [0.62, 0.88, 1.0],
                min_transaction_bytes: 32.0,
                barrier_cycles: 32.0,
                txn_issue_cycles: 1.0,
                smem_pipeline_warps: 2.0,
                serial_dep_latency_cycles: 200.0,
                read_reuse_fraction: 0.7,
            },
        }
    }

    /// GeForce GTX 280 (GT200, 2008): Table I row 2 — 141.7 GB/s, 16 KB
    /// shared memory, 30 processors, 8 thread processors each.
    pub fn gtx_280() -> Self {
        Self {
            query: QueryableProps {
                name: "GeForce GTX 280".into(),
                global_mem_bytes: 1024 * 1024 * 1024,
                num_processors: 30,
                constant_mem_bytes: 64 * 1024,
                shared_mem_per_sm_bytes: 16 * 1024,
                registers_per_sm: 16 * 1024,
                max_grid_blocks: 65_535 * 65_535,
                max_threads_per_block: 512,
                max_threads_per_sm: 1024,
                max_blocks_per_sm: 8,
                warp_size: 32,
                thread_procs_per_sm: 8,
            },
            hidden: HiddenProps {
                mem_bandwidth_gbps: 141.7,
                achievable_bw_fraction: 0.66,
                shared_banks: 16,
                bank_words_per_cycle: 1.0,
                core_clock_ghz: 1.296,
                mem_latency_cycles: 550.0,
                launch_overhead_us: 10.0,
                hide_warps: 16.0,
                block_overlap: [0.62, 0.88, 1.0],
                min_transaction_bytes: 32.0,
                barrier_cycles: 32.0,
                txn_issue_cycles: 1.0,
                smem_pipeline_warps: 8.0,
                serial_dep_latency_cycles: 400.0,
                read_reuse_fraction: 0.8,
            },
        }
    }

    /// GeForce GTX 470 (Fermi, 2010): Table I row 3 — 133.9 GB/s, 48 KB
    /// shared memory, 14 processors, 32 thread processors each.
    pub fn gtx_470() -> Self {
        Self {
            query: QueryableProps {
                name: "GeForce GTX 470".into(),
                global_mem_bytes: 1280 * 1024 * 1024,
                num_processors: 14,
                constant_mem_bytes: 64 * 1024,
                shared_mem_per_sm_bytes: 48 * 1024,
                registers_per_sm: 32 * 1024,
                max_grid_blocks: 65_535 * 65_535,
                max_threads_per_block: 1024,
                max_threads_per_sm: 1536,
                max_blocks_per_sm: 8,
                warp_size: 32,
                thread_procs_per_sm: 32,
            },
            hidden: HiddenProps {
                mem_bandwidth_gbps: 133.9,
                achievable_bw_fraction: 0.70,
                shared_banks: 32,
                bank_words_per_cycle: 1.0,
                core_clock_ghz: 1.215,
                mem_latency_cycles: 450.0,
                launch_overhead_us: 8.0,
                hide_warps: 26.0,
                block_overlap: [0.35, 0.85, 1.0],
                min_transaction_bytes: 32.0,
                barrier_cycles: 24.0,
                txn_issue_cycles: 0.8,
                smem_pipeline_warps: 8.0,
                serial_dep_latency_cycles: 150.0,
                read_reuse_fraction: 0.85,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_are_verbatim() {
        let d8800 = DeviceSpec::geforce_8800_gtx();
        assert_eq!(d8800.hidden().mem_bandwidth_gbps, 57.6);
        assert_eq!(d8800.queryable().shared_mem_per_sm_bytes, 16 * 1024);
        assert_eq!(d8800.queryable().num_processors, 14);
        assert_eq!(d8800.queryable().thread_procs_per_sm, 8);

        let d280 = DeviceSpec::gtx_280();
        assert_eq!(d280.hidden().mem_bandwidth_gbps, 141.7);
        assert_eq!(d280.queryable().shared_mem_per_sm_bytes, 16 * 1024);
        assert_eq!(d280.queryable().num_processors, 30);
        assert_eq!(d280.queryable().thread_procs_per_sm, 8);

        let d470 = DeviceSpec::gtx_470();
        assert_eq!(d470.hidden().mem_bandwidth_gbps, 133.9);
        assert_eq!(d470.queryable().shared_mem_per_sm_bytes, 48 * 1024);
        assert_eq!(d470.queryable().num_processors, 14);
        assert_eq!(d470.queryable().thread_procs_per_sm, 32);
    }

    #[test]
    fn register_limits_produce_paper_onchip_sizes() {
        // §V: "the largest systems that can be solved locally on-chip are of
        // sizes 256, 512, and 1024 respectively for the GeForce 8800, 280,
        // and 470". With the base kernel's ~24 registers/thread and one
        // thread per equation, the register file is the binding constraint.
        const REGS_PER_THREAD: usize = 24;
        let max_onchip = |d: &DeviceSpec| {
            let q = d.queryable();
            let by_regs = q.registers_per_sm / REGS_PER_THREAD;
            let by_shmem = q.shared_mem_per_sm_bytes / (4 * 4); // 4 f32 arrays
            let by_threads = q.max_threads_per_block;
            let cap = by_regs.min(by_shmem).min(by_threads);
            // round down to a power of two
            let mut p = 1usize;
            while p * 2 <= cap {
                p *= 2;
            }
            p
        };
        assert_eq!(max_onchip(&DeviceSpec::geforce_8800_gtx()), 256);
        assert_eq!(max_onchip(&DeviceSpec::gtx_280()), 512);
        assert_eq!(max_onchip(&DeviceSpec::gtx_470()), 1024);
    }

    #[test]
    fn warp_size_constant_across_devices() {
        for d in DeviceSpec::paper_devices() {
            assert_eq!(d.queryable().warp_size, 32);
        }
    }

    #[test]
    fn overlap_is_monotone_in_resident_blocks() {
        for d in DeviceSpec::paper_devices() {
            let h = d.hidden();
            assert_eq!(h.overlap(0), 0.0);
            assert!(h.overlap(1) < h.overlap(2));
            assert!(h.overlap(2) <= h.overlap(3));
            assert_eq!(h.overlap(3), h.overlap(9));
        }
    }

    #[test]
    fn specs_clone_and_compare() {
        let d = DeviceSpec::gtx_470();
        let cloned = d.clone();
        assert_eq!(d, cloned);
        assert_ne!(d, DeviceSpec::gtx_280());
    }
}
