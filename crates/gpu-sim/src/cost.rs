//! Cost metering: the counters a kernel accumulates while it runs, and the
//! per-launch statistics the timing model produces from them.

use serde::{Deserialize, Serialize};

/// Metered costs of one block (or, summed, of a whole kernel).
///
/// Kernels record into these through [`crate::BlockCtx`]; the timing model in
/// [`crate::timing`] converts them to simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostCounters {
    /// Useful global-memory bytes read (payload, before coalescing waste).
    pub gmem_read_bytes: f64,
    /// Useful global-memory bytes written.
    pub gmem_write_bytes: f64,
    /// Bytes actually moved across the memory bus, including transaction
    /// waste from uncoalesced access (≥ read + write payload).
    pub gmem_txn_bytes: f64,
    /// Number of warp-level global memory instructions issued (drives the
    /// latency-exposure component).
    pub gmem_warp_txns: f64,
    /// Shared-memory word accesses.
    pub smem_accesses: f64,
    /// Extra serialised shared accesses caused by bank conflicts.
    pub smem_conflict_accesses: f64,
    /// Arithmetic thread-operations (one op on one thread = 1).
    pub thread_ops: f64,
    /// Block-wide barriers executed.
    pub barriers: f64,
}

impl CostCounters {
    /// Accumulate another counter set into this one.
    pub fn add(&mut self, other: &CostCounters) {
        self.gmem_read_bytes += other.gmem_read_bytes;
        self.gmem_write_bytes += other.gmem_write_bytes;
        self.gmem_txn_bytes += other.gmem_txn_bytes;
        self.gmem_warp_txns += other.gmem_warp_txns;
        self.smem_accesses += other.smem_accesses;
        self.smem_conflict_accesses += other.smem_conflict_accesses;
        self.thread_ops += other.thread_ops;
        self.barriers += other.barriers;
    }

    /// Total useful payload bytes (read + write).
    pub fn gmem_payload_bytes(&self) -> f64 {
        self.gmem_read_bytes + self.gmem_write_bytes
    }

    /// Coalescing efficiency achieved: payload / moved (1.0 = perfect).
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.gmem_txn_bytes == 0.0 {
            1.0
        } else {
            self.gmem_payload_bytes() / self.gmem_txn_bytes
        }
    }
}

/// What bounded a kernel's simulated execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LimitedBy {
    /// Global memory bandwidth (streaming kernels).
    Bandwidth,
    /// Processor execution: arithmetic, shared memory and stalls.
    Execution,
    /// Fixed launch overhead dominated (tiny kernels).
    Overhead,
}

/// Per-SM residency of a launch and the resource that limited it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Residency {
    /// Blocks resident per SM.
    pub blocks_per_sm: usize,
    /// Resident warps per SM (`blocks × ⌈threads/32⌉`).
    pub warps_per_sm: usize,
    /// The resource that capped residency.
    pub limited_by: &'static str,
}

/// Everything the simulator reports about one kernel launch.
#[derive(Debug, Clone, Serialize)]
pub struct KernelStats {
    /// Kernel label (for profiles and reports).
    pub label: String,
    /// Number of blocks launched.
    pub grid_blocks: usize,
    /// Threads per block.
    pub block_threads: usize,
    /// Residency achieved.
    pub residency: Residency,
    /// Summed counters across every block.
    pub totals: CostCounters,
    /// Simulated execution time in seconds (excludes launch overhead).
    pub exec_time_s: f64,
    /// Simulated launch overhead in seconds.
    pub overhead_s: f64,
    /// What bounded execution.
    pub limited_by: LimitedBy,
}

impl KernelStats {
    /// Total simulated wall time of this launch.
    pub fn total_time_s(&self) -> f64 {
        self.exec_time_s + self.overhead_s
    }

    /// Total simulated wall time in milliseconds.
    pub fn total_time_ms(&self) -> f64 {
        self.total_time_s() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut a = CostCounters {
            gmem_read_bytes: 100.0,
            thread_ops: 5.0,
            ..Default::default()
        };
        let b = CostCounters {
            gmem_read_bytes: 50.0,
            gmem_write_bytes: 25.0,
            barriers: 2.0,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.gmem_read_bytes, 150.0);
        assert_eq!(a.gmem_write_bytes, 25.0);
        assert_eq!(a.barriers, 2.0);
        assert_eq!(a.gmem_payload_bytes(), 175.0);
    }

    #[test]
    fn coalescing_efficiency_bounds() {
        let perfect = CostCounters {
            gmem_read_bytes: 128.0,
            gmem_txn_bytes: 128.0,
            ..Default::default()
        };
        assert_eq!(perfect.coalescing_efficiency(), 1.0);

        let wasteful = CostCounters {
            gmem_read_bytes: 128.0,
            gmem_txn_bytes: 1024.0,
            ..Default::default()
        };
        assert_eq!(wasteful.coalescing_efficiency(), 0.125);

        let none = CostCounters::default();
        assert_eq!(none.coalescing_efficiency(), 1.0);
    }

    #[test]
    fn stats_time_helpers() {
        let s = KernelStats {
            label: "k".into(),
            grid_blocks: 1,
            block_threads: 32,
            residency: Residency {
                blocks_per_sm: 1,
                warps_per_sm: 1,
                limited_by: "threads",
            },
            totals: CostCounters::default(),
            exec_time_s: 1e-3,
            overhead_s: 5e-6,
            limited_by: LimitedBy::Execution,
        };
        assert!((s.total_time_s() - 1.005e-3).abs() < 1e-12);
        assert!((s.total_time_ms() - 1.005).abs() < 1e-9);
    }
}
