//! Dynamic kernel sanitizer: shadow-state tracking of every buffer and
//! shared-memory access a kernel makes, in the style of CUDA's
//! `compute-sanitizer` tool suite.
//!
//! Three checkers run at once when a [`crate::Gpu`] is created with
//! [`crate::Gpu::with_sanitizer`]:
//!
//! * **memcheck** — an access through the tracked [`crate::BlockIo`] /
//!   [`crate::ScatterWriter`] APIs with an index past the end of the buffer
//!   is recorded as [`HazardKind::OutOfBounds`] (and the access is dropped,
//!   so the simulation continues to collect further hazards);
//! * **initcheck** — a read of a global-memory element that no upload or
//!   kernel has ever written, or of a shared-memory element no thread has
//!   stored this launch, is [`HazardKind::UninitializedRead`];
//! * **racecheck** — two accesses to the same element from different threads
//!   within the same *barrier interval* (the span between two consecutive
//!   `ctx.sync()` calls), at least one of them a write, are flagged as
//!   [`HazardKind::RaceWriteWrite`] / [`HazardKind::RaceReadWrite`]. A
//!   barrier ends the interval and clears the access map — exactly the
//!   `__syncthreads()` happens-before rule.
//!
//! Hazards are *recorded, not fatal*: like `compute-sanitizer`, the launch
//! completes and the report lists every finding with the kernel label, block
//! id, region, element index and the two conflicting access sites.
//!
//! The shadow state lives entirely outside the cost meters, so enabling the
//! sanitizer never changes a simulated timing — bit-identical clocks with
//! checking on or off are asserted in the test suite.

use std::collections::HashMap;

/// Which checker produced a [`Hazard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HazardKind {
    /// memcheck: index past the end of the region.
    OutOfBounds,
    /// initcheck: read of an element never written.
    UninitializedRead,
    /// racecheck: two writes to one element in one barrier interval.
    RaceWriteWrite,
    /// racecheck: a read and a write of one element in one barrier interval.
    RaceReadWrite,
}

impl std::fmt::Display for HazardKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HazardKind::OutOfBounds => write!(f, "out-of-bounds access"),
            HazardKind::UninitializedRead => write!(f, "uninitialized read"),
            HazardKind::RaceWriteWrite => write!(f, "write-write race"),
            HazardKind::RaceReadWrite => write!(f, "read-write race"),
        }
    }
}

/// The address space + buffer slot a hazard refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Block-shared memory (indices are element offsets into the block's
    /// declared shared allocation).
    Shared,
    /// Input buffer `inputs[i]` of the launch.
    Input(usize),
    /// Chunked output `owned[i]` (indices are block-local).
    ChunkedOut(usize),
    /// Scattered output `scattered[i]` (indices are buffer-global).
    ScatteredOut(usize),
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Region::Shared => write!(f, "shared"),
            Region::Input(i) => write!(f, "input[{i}]"),
            Region::ChunkedOut(i) => write!(f, "owned[{i}]"),
            Region::ScatteredOut(i) => write!(f, "scattered[{i}]"),
        }
    }
}

/// One side of a conflicting access pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSite {
    /// Static label of the access site in the kernel source.
    pub site: &'static str,
    /// Logical lane (thread index within the block) that made the access.
    pub tid: usize,
    /// True for a store.
    pub write: bool,
}

impl std::fmt::Display for AccessSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} by thread {} at `{}`",
            if self.write { "write" } else { "read" },
            self.tid,
            self.site
        )
    }
}

/// One sanitizer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hazard {
    /// Which checker fired.
    pub kind: HazardKind,
    /// Label of the launch during which the hazard occurred.
    pub kernel: String,
    /// Block that made the access.
    pub block: u32,
    /// Address space + buffer slot.
    pub region: Region,
    /// Element index within the region.
    pub index: usize,
    /// The earlier of the two conflicting accesses (races only).
    pub first: Option<AccessSite>,
    /// The access that triggered the hazard.
    pub second: AccessSite,
}

impl std::fmt::Display for Hazard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} {}[{}] in block {}: {}",
            self.kernel, self.kind, self.region, self.index, self.block, self.second
        )?;
        if let Some(first) = &self.first {
            write!(f, " conflicts with earlier {first}")?;
        }
        Ok(())
    }
}

/// Aggregated findings across every launch since the sanitizer was enabled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanitizerReport {
    /// Every recorded hazard (capped per block; see [`SanitizerReport::dropped`]).
    pub hazards: Vec<Hazard>,
    /// Number of launches that ran under the sanitizer.
    pub launches_checked: usize,
    /// Hazards discarded after a block hit its per-block cap.
    pub dropped: usize,
}

impl SanitizerReport {
    /// True when no hazard was recorded (dropped hazards count as findings).
    pub fn is_clean(&self) -> bool {
        self.hazards.is_empty() && self.dropped == 0
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!("{} launches checked, no hazards", self.launches_checked)
        } else {
            format!(
                "{} launches checked, {} hazards ({} dropped past the cap)",
                self.launches_checked,
                self.hazards.len() + self.dropped,
                self.dropped
            )
        }
    }
}

impl std::fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for h in &self.hazards {
            writeln!(f, "  {h}")?;
        }
        Ok(())
    }
}

/// A compact bit-per-element "has this element ever been written" mask, the
/// initcheck shadow of one global-memory buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitMask {
    words: Vec<u64>,
    len: usize,
}

impl InitMask {
    /// A mask with every element unwritten (a fresh `cudaMalloc`).
    pub fn new_uninit(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A mask with every element written (a buffer uploaded from the host).
    pub fn new_init(len: usize) -> Self {
        let mut m = Self::new_uninit(len);
        m.set_all();
        m
    }

    /// Number of elements tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Has element `i` been written? Out-of-range queries return `false`.
    pub fn get(&self, i: usize) -> bool {
        i < self.len && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Mark element `i` written (out-of-range is ignored).
    pub fn set(&mut self, i: usize) {
        if i < self.len {
            self.words[i / 64] |= 1 << (i % 64);
        }
    }

    /// Mark `start..end` written (clamped to the mask length).
    pub fn set_range(&mut self, start: usize, end: usize) {
        for i in start..end.min(self.len) {
            self.words[i / 64] |= 1 << (i % 64);
        }
    }

    /// Mark every element written.
    pub fn set_all(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        // Keep bits past `len` clear so equality comparisons stay meaningful.
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
    }

    /// OR another mask of the same length into this one.
    pub fn merge(&mut self, other: &InitMask) {
        debug_assert_eq!(self.len, other.len);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }
}

/// The strongest access so far to one element within the current barrier
/// interval.
#[derive(Debug, Clone, Copy)]
struct AccessRecord {
    tid: usize,
    site: &'static str,
    write: bool,
}

/// Cap on recorded hazards per block per launch; further findings only bump
/// the dropped counter. Keeps a catastrophically broken kernel from building
/// a multi-gigabyte report.
pub const MAX_HAZARDS_PER_BLOCK: usize = 16;

/// A draft hazard recorded inside a block, before the launch attaches the
/// kernel label.
#[derive(Debug, Clone)]
pub(crate) struct BlockHazard {
    pub kind: HazardKind,
    pub region: Region,
    pub index: usize,
    pub first: Option<AccessSite>,
    pub second: AccessSite,
}

/// Per-block shadow state for one launch: the racecheck access map for the
/// current barrier interval, the shared-memory and chunked-output init
/// shadows, and the hazards found so far.
///
/// Lives in a `RefCell` owned by the block's executor; the tracked access
/// APIs on [`crate::BlockCtx`] / [`crate::BlockIo`] borrow it per call.
#[derive(Debug)]
pub(crate) struct BlockShadow {
    /// Barrier-interval ordinal; bumped by every `ctx.sync()`.
    interval: u32,
    /// Strongest access per element in the current interval.
    accesses: HashMap<(Region, usize), AccessRecord>,
    /// Shared-memory init shadow (element granularity).
    smem_written: InitMask,
    /// Per chunked output: block-local written mask (lazily sized).
    owned_writes: Vec<Option<InitMask>>,
    hazards: Vec<BlockHazard>,
    dropped: usize,
}

impl BlockShadow {
    pub(crate) fn new(smem_elems: usize, num_owned: usize) -> Self {
        Self {
            interval: 0,
            accesses: HashMap::new(),
            smem_written: InitMask::new_uninit(smem_elems),
            owned_writes: vec![None; num_owned],
            hazards: Vec::new(),
            dropped: 0,
        }
    }

    /// A `ctx.sync()`: close the barrier interval. All accesses before the
    /// barrier happen-before all accesses after it, so the race map resets.
    pub(crate) fn barrier(&mut self) {
        self.interval += 1;
        self.accesses.clear();
    }

    fn push(&mut self, h: BlockHazard) {
        if self.hazards.len() < MAX_HAZARDS_PER_BLOCK {
            self.hazards.push(h);
        } else {
            self.dropped += 1;
        }
    }

    /// memcheck: an index past `len` in `region`.
    pub(crate) fn record_oob(
        &mut self,
        region: Region,
        index: usize,
        len: usize,
        tid: usize,
        site: &'static str,
        write: bool,
    ) {
        debug_assert!(index >= len);
        let _ = len;
        self.push(BlockHazard {
            kind: HazardKind::OutOfBounds,
            region,
            index,
            first: None,
            second: AccessSite { site, tid, write },
        });
    }

    /// initcheck: a read of a never-written element.
    pub(crate) fn record_uninit(
        &mut self,
        region: Region,
        index: usize,
        tid: usize,
        site: &'static str,
    ) {
        self.push(BlockHazard {
            kind: HazardKind::UninitializedRead,
            region,
            index,
            first: None,
            second: AccessSite {
                site,
                tid,
                write: false,
            },
        });
    }

    /// racecheck: record an in-bounds access and flag a hazard if it
    /// conflicts with an access by a *different* thread in the same barrier
    /// interval, at least one of the pair being a write.
    pub(crate) fn record_access(
        &mut self,
        region: Region,
        index: usize,
        tid: usize,
        site: &'static str,
        write: bool,
    ) {
        let key = (region, index);
        if let Some(prev) = self.accesses.get(&key).copied() {
            if prev.tid != tid && (prev.write || write) {
                let kind = if prev.write && write {
                    HazardKind::RaceWriteWrite
                } else {
                    HazardKind::RaceReadWrite
                };
                self.push(BlockHazard {
                    kind,
                    region,
                    index,
                    first: Some(AccessSite {
                        site: prev.site,
                        tid: prev.tid,
                        write: prev.write,
                    }),
                    second: AccessSite { site, tid, write },
                });
            }
            // Keep the strongest record: a write dominates any read.
            if write || !prev.write {
                self.accesses.insert(key, AccessRecord { tid, site, write });
            }
        } else {
            self.accesses.insert(key, AccessRecord { tid, site, write });
        }
    }

    /// Shared-memory initcheck shadow: has this element been stored?
    pub(crate) fn smem_initialized(&self, index: usize) -> bool {
        self.smem_written.get(index)
    }

    /// Mark a shared-memory element stored.
    pub(crate) fn mark_smem_write(&mut self, index: usize) {
        self.smem_written.set(index);
    }

    /// Number of shared-memory elements the block declared.
    pub(crate) fn smem_elems(&self) -> usize {
        self.smem_written.len()
    }

    /// Mark a block-local index of chunked output `slot` written.
    pub(crate) fn mark_owned_write(&mut self, slot: usize, index: usize, chunk_len: usize) {
        let mask = self.owned_writes[slot].get_or_insert_with(|| InitMask::new_uninit(chunk_len));
        mask.set(index);
    }

    /// Drain this block's results for the launch-level audit.
    pub(crate) fn into_parts(self) -> (Vec<BlockHazard>, Vec<Option<InitMask>>, usize) {
        (self.hazards, self.owned_writes, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_mask_set_get_roundtrip() {
        let mut m = InitMask::new_uninit(130);
        assert!(!m.get(0) && !m.get(129));
        m.set(0);
        m.set(129);
        assert!(m.get(0) && m.get(129) && !m.get(64));
        assert!(!m.get(500)); // out of range reads as unwritten
        m.set(500); // out of range ignored
        m.set_range(60, 70);
        assert!(m.get(63) && m.get(69) && !m.get(70));
    }

    #[test]
    fn init_mask_all_and_merge() {
        let mut a = InitMask::new_uninit(70);
        let b = InitMask::new_init(70);
        assert!(b.get(69) && !b.get(70));
        a.merge(&b);
        assert!(a.get(0) && a.get(69));
        assert_eq!(a, b);
    }

    #[test]
    fn race_same_interval_different_tid() {
        let mut s = BlockShadow::new(16, 0);
        s.record_access(Region::Shared, 3, 0, "a", true);
        s.record_access(Region::Shared, 3, 1, "b", true);
        let (hazards, _, _) = s.into_parts();
        assert_eq!(hazards.len(), 1);
        assert_eq!(hazards[0].kind, HazardKind::RaceWriteWrite);
        assert_eq!(hazards[0].index, 3);
        assert_eq!(hazards[0].first.unwrap().site, "a");
        assert_eq!(hazards[0].second.site, "b");
    }

    #[test]
    fn read_write_race_detected_both_orders() {
        for (first_write, second_write) in [(true, false), (false, true)] {
            let mut s = BlockShadow::new(16, 0);
            s.record_access(Region::Shared, 5, 0, "x", first_write);
            s.record_access(Region::Shared, 5, 1, "y", second_write);
            let (hazards, _, _) = s.into_parts();
            assert_eq!(hazards.len(), 1, "orders {first_write}/{second_write}");
            assert_eq!(hazards[0].kind, HazardKind::RaceReadWrite);
        }
    }

    #[test]
    fn barrier_separates_accesses() {
        let mut s = BlockShadow::new(16, 0);
        s.record_access(Region::Shared, 3, 0, "a", true);
        s.barrier();
        s.record_access(Region::Shared, 3, 1, "b", true);
        let (hazards, _, _) = s.into_parts();
        assert!(hazards.is_empty());
    }

    #[test]
    fn same_tid_never_races_and_reads_never_race() {
        let mut s = BlockShadow::new(16, 0);
        s.record_access(Region::Shared, 3, 0, "a", true);
        s.record_access(Region::Shared, 3, 0, "b", true); // same thread
        s.record_access(Region::Shared, 7, 0, "c", false);
        s.record_access(Region::Shared, 7, 1, "d", false); // read-read
        let (hazards, _, _) = s.into_parts();
        assert!(hazards.is_empty());
    }

    #[test]
    fn write_dominates_read_in_record() {
        // read(t0) then write(t1) -> hazard; then read(t2) must conflict
        // with the *write*, not the stale read.
        let mut s = BlockShadow::new(16, 0);
        s.record_access(Region::Shared, 1, 0, "r0", false);
        s.record_access(Region::Shared, 1, 1, "w1", true);
        s.record_access(Region::Shared, 1, 2, "r2", false);
        let (hazards, _, _) = s.into_parts();
        assert_eq!(hazards.len(), 2);
        assert_eq!(hazards[1].kind, HazardKind::RaceReadWrite);
        assert_eq!(hazards[1].first.unwrap().site, "w1");
    }

    #[test]
    fn hazard_cap_counts_dropped() {
        let mut s = BlockShadow::new(4, 0);
        for i in 0..(MAX_HAZARDS_PER_BLOCK + 5) {
            s.record_uninit(Region::Input(0), i, 0, "r");
        }
        let (hazards, _, dropped) = s.into_parts();
        assert_eq!(hazards.len(), MAX_HAZARDS_PER_BLOCK);
        assert_eq!(dropped, 5);
    }

    #[test]
    fn smem_init_shadow() {
        let mut s = BlockShadow::new(8, 0);
        assert!(!s.smem_initialized(2));
        s.mark_smem_write(2);
        assert!(s.smem_initialized(2));
        assert_eq!(s.smem_elems(), 8);
    }

    #[test]
    fn owned_masks_lazily_sized() {
        let mut s = BlockShadow::new(0, 2);
        s.mark_owned_write(1, 3, 8);
        let (_, owned, _) = s.into_parts();
        assert!(owned[0].is_none());
        let m = owned[1].as_ref().unwrap();
        assert_eq!(m.len(), 8);
        assert!(m.get(3) && !m.get(2));
    }

    #[test]
    fn report_display_and_summary() {
        let mut r = SanitizerReport {
            launches_checked: 3,
            ..Default::default()
        };
        assert!(r.is_clean());
        assert!(r.summary().contains("no hazards"));
        r.hazards.push(Hazard {
            kind: HazardKind::OutOfBounds,
            kernel: "k[x]".into(),
            block: 7,
            region: Region::ScatteredOut(0),
            index: 42,
            first: None,
            second: AccessSite {
                site: "k::store",
                tid: 3,
                write: true,
            },
        });
        assert!(!r.is_clean());
        let s = r.to_string();
        assert!(
            s.contains("k[x]") && s.contains("42") && s.contains("block 7"),
            "{s}"
        );
    }
}
