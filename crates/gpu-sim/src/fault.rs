//! Deterministic fault injection for the simulated device.
//!
//! A [`FaultPlan`] describes *what* can go wrong and *how often*; a
//! [`FaultInjector`] (attached via [`crate::Gpu::enable_faults`]) rolls a
//! seeded PRNG at each injection site and records every injected fault in a
//! [`FaultLog`]. The contract mirrors the sanitizer's and the tracer's:
//! **a disabled plan is a strict no-op** — [`crate::Gpu::enable_faults`]
//! with [`FaultPlan::disabled`] attaches nothing, so results *and* simulated
//! timings are bit-identical to a run without the injector (asserted in
//! `tests/chaos.rs`).
//!
//! Fault model (the transient failures a production GPU solver must
//! survive):
//!
//! * **transient launch failure** — the launch aborts before running, the
//!   simulated clock does not advance (a sporadic `cudaErrorLaunchFailure`);
//! * **kernel timeout** — the launch is killed by the simulated watchdog;
//! * **H2D / D2H transfer corruption** — one element of the transferred data
//!   has one storage bit flipped;
//! * **ECC-style bit flip** — after a successful launch, one element of one
//!   output buffer is silently corrupted;
//! * **device OOM** — an allocation fails spuriously even though capacity
//!   remains.
//!
//! Everything is deterministic from [`FaultPlan::seed`]: the same plan
//! driving the same operation sequence injects the same faults.

use crate::error::SimError;
use std::fmt;

/// Maximum number of [`FaultRecord`]s kept in a [`FaultLog`]; further
/// injections only bump the counters (and [`FaultLog::dropped`]).
pub const FAULT_LOG_CAP: usize = 1024;

/// SplitMix64: a tiny, high-quality, seedable PRNG (Steele et al., 2014).
/// Inlined so the simulator stays free of external RNG dependencies.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`. `n` must be nonzero.
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// The kinds of fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FaultKind {
    /// Transient launch failure: the kernel never ran.
    LaunchFailure,
    /// The kernel was killed by the simulated watchdog.
    KernelTimeout,
    /// One bit flipped in one element of an H2D or D2H transfer.
    TransferCorruption,
    /// One bit flipped in one element of an output buffer after a
    /// successful launch (an uncorrected ECC event).
    BitFlip,
    /// A spurious allocation failure.
    DeviceOom,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::LaunchFailure => "launch-failure",
            FaultKind::KernelTimeout => "kernel-timeout",
            FaultKind::TransferCorruption => "transfer-corruption",
            FaultKind::BitFlip => "bit-flip",
            FaultKind::DeviceOom => "device-oom",
        };
        f.write_str(s)
    }
}

/// One injected fault: what happened, where, and the specifics.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultRecord {
    /// The fault class.
    pub kind: FaultKind,
    /// Where it was injected: a kernel label, `"h2d"`, `"d2h"`, or
    /// `"alloc"`.
    pub site: String,
    /// Human-readable specifics (element index, bit position, …).
    pub detail: String,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.kind, self.site, self.detail)
    }
}

/// The accumulated injection history of a [`FaultInjector`].
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultLog {
    /// Injected transient launch failures.
    pub launch_failures: usize,
    /// Injected kernel timeouts.
    pub kernel_timeouts: usize,
    /// Injected transfer corruptions.
    pub transfer_corruptions: usize,
    /// Injected post-launch bit flips.
    pub bit_flips: usize,
    /// Injected spurious allocation failures.
    pub alloc_failures: usize,
    /// Detailed records, capped at [`FAULT_LOG_CAP`].
    pub records: Vec<FaultRecord>,
    /// Records dropped once the cap was reached.
    pub dropped: usize,
}

impl FaultLog {
    /// Total faults injected (all kinds, including dropped records).
    #[must_use]
    pub fn injected(&self) -> usize {
        self.launch_failures
            + self.kernel_timeouts
            + self.transfer_corruptions
            + self.bit_flips
            + self.alloc_failures
    }

    fn push(&mut self, rec: FaultRecord) {
        match rec.kind {
            FaultKind::LaunchFailure => self.launch_failures += 1,
            FaultKind::KernelTimeout => self.kernel_timeouts += 1,
            FaultKind::TransferCorruption => self.transfer_corruptions += 1,
            FaultKind::BitFlip => self.bit_flips += 1,
            FaultKind::DeviceOom => self.alloc_failures += 1,
        }
        if self.records.len() < FAULT_LOG_CAP {
            self.records.push(rec);
        } else {
            self.dropped += 1;
        }
    }
}

impl fmt::Display for FaultLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faults injected ({} launch failures, {} timeouts, \
             {} transfer corruptions, {} bit flips, {} alloc failures)",
            self.injected(),
            self.launch_failures,
            self.kernel_timeouts,
            self.transfer_corruptions,
            self.bit_flips,
            self.alloc_failures,
        )
    }
}

/// A seeded fault campaign: per-site injection probabilities plus an
/// optional budget. All rates are probabilities in `[0, 1]`; a rate of
/// `0.0` never rolls the PRNG for that site, so partially-enabled plans
/// stay deterministic per site.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// PRNG seed; equal seeds (and equal op sequences) inject equal faults.
    pub seed: u64,
    /// Probability that a kernel launch fails transiently (never runs).
    pub launch_failure: f64,
    /// Probability that a kernel launch is killed by the watchdog.
    pub kernel_timeout: f64,
    /// Probability that an H2D/D2H transfer corrupts one element.
    pub transfer_corruption: f64,
    /// Probability that a successful launch bit-flips one output element.
    pub bit_flip: f64,
    /// Probability that an allocation fails spuriously.
    pub alloc_failure: f64,
    /// Stop injecting after this many faults (`usize::MAX` = unlimited).
    pub max_faults: usize,
}

impl FaultPlan {
    /// The no-op plan: nothing is ever injected.
    /// [`crate::Gpu::enable_faults`] with this plan attaches no injector at
    /// all, so the run is bit-identical to one without the fault layer.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            seed: 0,
            launch_failure: 0.0,
            kernel_timeout: 0.0,
            transfer_corruption: 0.0,
            bit_flip: 0.0,
            alloc_failure: 0.0,
            max_faults: usize::MAX,
        }
    }

    /// An all-zero plan with the given seed; combine with the `with_*`
    /// builders to enable specific fault classes.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::disabled()
        }
    }

    /// Set the transient-launch-failure probability.
    #[must_use]
    pub fn with_launch_failures(mut self, rate: f64) -> Self {
        self.launch_failure = rate;
        self
    }

    /// Set the kernel-timeout probability.
    #[must_use]
    pub fn with_kernel_timeouts(mut self, rate: f64) -> Self {
        self.kernel_timeout = rate;
        self
    }

    /// Set the transfer-corruption probability.
    #[must_use]
    pub fn with_transfer_corruption(mut self, rate: f64) -> Self {
        self.transfer_corruption = rate;
        self
    }

    /// Set the post-launch bit-flip probability.
    #[must_use]
    pub fn with_bit_flips(mut self, rate: f64) -> Self {
        self.bit_flip = rate;
        self
    }

    /// Set the spurious-allocation-failure probability.
    #[must_use]
    pub fn with_alloc_failures(mut self, rate: f64) -> Self {
        self.alloc_failure = rate;
        self
    }

    /// Cap the total number of injected faults.
    #[must_use]
    pub fn with_max_faults(mut self, max: usize) -> Self {
        self.max_faults = max;
        self
    }

    /// True when any fault class has a nonzero probability.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.launch_failure > 0.0
            || self.kernel_timeout > 0.0
            || self.transfer_corruption > 0.0
            || self.bit_flip > 0.0
            || self.alloc_failure > 0.0
    }
}

/// Rolls the dice at each injection site of a [`crate::Gpu`] and keeps the
/// [`FaultLog`]. Constructed by [`crate::Gpu::enable_faults`]; not used
/// directly by solver code.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    log: FaultLog,
    /// Lifetime injection count; unlike the log it survives
    /// [`FaultInjector::take_log`], so the fault budget cannot be reset.
    injected_total: usize,
}

impl FaultInjector {
    /// Build an injector for a plan (PRNG seeded from [`FaultPlan::seed`]).
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SplitMix64::new(plan.seed);
        Self {
            plan,
            rng,
            log: FaultLog::default(),
            injected_total: 0,
        }
    }

    /// The plan this injector executes.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The injection history so far.
    #[must_use]
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// Take the injection history, resetting it (the PRNG stream and the
    /// fault budget consumed so far are unaffected).
    pub fn take_log(&mut self) -> FaultLog {
        std::mem::take(&mut self.log)
    }

    fn budget_left(&self) -> bool {
        self.injected_total < self.plan.max_faults
    }

    /// Roll one site. Never touches the PRNG when `rate == 0`.
    fn roll(&mut self, rate: f64) -> bool {
        let hit = rate > 0.0 && self.budget_left() && self.rng.next_f64() < rate;
        if hit {
            self.injected_total += 1;
        }
        hit
    }

    /// Should this launch fail? Returns the error to raise plus the record
    /// (already logged). Timeout is rolled first, then transient failure.
    pub(crate) fn next_launch_fault(&mut self, label: &str) -> Option<(SimError, FaultRecord)> {
        if self.roll(self.plan.kernel_timeout) {
            let rec = FaultRecord {
                kind: FaultKind::KernelTimeout,
                site: label.to_string(),
                detail: "killed by simulated watchdog".to_string(),
            };
            self.log.push(rec.clone());
            return Some((
                SimError::KernelTimeout {
                    kernel: label.to_string(),
                },
                rec,
            ));
        }
        if self.roll(self.plan.launch_failure) {
            let rec = FaultRecord {
                kind: FaultKind::LaunchFailure,
                site: label.to_string(),
                detail: "transient launch failure".to_string(),
            };
            self.log.push(rec.clone());
            return Some((
                SimError::TransientLaunchFailure {
                    kernel: label.to_string(),
                },
                rec,
            ));
        }
        None
    }

    /// Should this allocation fail spuriously? Returns the record (already
    /// logged); the caller raises the OOM error.
    pub(crate) fn next_alloc_fault(&mut self, bytes: usize) -> Option<FaultRecord> {
        if !self.roll(self.plan.alloc_failure) {
            return None;
        }
        let rec = FaultRecord {
            kind: FaultKind::DeviceOom,
            site: "alloc".to_string(),
            detail: format!("spurious OOM on a {bytes} B allocation"),
        };
        self.log.push(rec.clone());
        Some(rec)
    }

    /// Should this transfer corrupt? Returns `(element index, bit, record)`
    /// for a buffer of `len` elements of `elem_bits` bits each.
    pub(crate) fn next_transfer_fault(
        &mut self,
        direction: &'static str,
        len: usize,
        elem_bits: u32,
    ) -> Option<(usize, u32, FaultRecord)> {
        if len == 0 || !self.roll(self.plan.transfer_corruption) {
            return None;
        }
        let index = self.rng.below(len);
        let bit = self.rng.below(elem_bits as usize) as u32;
        let rec = FaultRecord {
            kind: FaultKind::TransferCorruption,
            site: direction.to_string(),
            detail: format!("flipped bit {bit} of element {index}"),
        };
        self.log.push(rec.clone());
        Some((index, bit, rec))
    }

    /// Should this successful launch silently corrupt an output? Returns
    /// `(output slot, element index, bit, record)` given each output's
    /// length.
    pub(crate) fn next_output_bit_flip(
        &mut self,
        label: &str,
        output_lens: &[usize],
        elem_bits: u32,
    ) -> Option<(usize, usize, u32, FaultRecord)> {
        if output_lens.iter().all(|&l| l == 0) || !self.roll(self.plan.bit_flip) {
            return None;
        }
        // Pick an output slot weighted by nothing in particular — re-roll
        // past empty buffers so the flip always lands somewhere.
        let mut slot = self.rng.below(output_lens.len());
        while output_lens[slot] == 0 {
            slot = self.rng.below(output_lens.len());
        }
        let index = self.rng.below(output_lens[slot]);
        let bit = self.rng.below(elem_bits as usize) as u32;
        let rec = FaultRecord {
            kind: FaultKind::BitFlip,
            site: label.to_string(),
            detail: format!("flipped bit {bit} of element {index} in output {slot}"),
        };
        self.log.push(rec.clone());
        Some((slot, index, bit, rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_is_not_enabled() {
        assert!(!FaultPlan::disabled().is_enabled());
        assert!(FaultPlan::seeded(7).with_bit_flips(0.1).is_enabled());
    }

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut in_lower_half = 0usize;
        for _ in 0..1000 {
            let x = a.next_f64();
            assert_eq!(x.to_bits(), b.next_f64().to_bits());
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                in_lower_half += 1;
            }
        }
        assert!((400..600).contains(&in_lower_half), "{in_lower_half}");
    }

    #[test]
    fn launch_faults_respect_rate_and_budget() {
        let plan = FaultPlan::seeded(1)
            .with_launch_failures(1.0)
            .with_max_faults(2);
        let mut inj = FaultInjector::new(plan);
        assert!(inj.next_launch_fault("k1").is_some());
        assert!(inj.next_launch_fault("k2").is_some());
        assert!(inj.next_launch_fault("k3").is_none(), "budget exhausted");
        assert_eq!(inj.log().launch_failures, 2);
        assert_eq!(inj.log().injected(), 2);
    }

    #[test]
    fn zero_rate_site_never_draws() {
        // Two injectors whose only difference is a zero-rate site must
        // produce identical streams at the shared nonzero site.
        let mut a = FaultInjector::new(FaultPlan::seeded(9).with_bit_flips(0.5));
        let mut b = FaultInjector::new(
            FaultPlan::seeded(9)
                .with_bit_flips(0.5)
                .with_launch_failures(0.0),
        );
        for i in 0..64 {
            let _ = a.next_launch_fault("k"); // zero-rate: no draw
            let fa = a.next_output_bit_flip("k", &[128], 32);
            let fb = b.next_output_bit_flip("k", &[128], 32);
            assert_eq!(fa.is_some(), fb.is_some(), "step {i}");
            if let (Some(x), Some(y)) = (fa, fb) {
                assert_eq!((x.0, x.1, x.2), (y.0, y.1, y.2));
            }
        }
    }

    #[test]
    fn kinds_and_records_display() {
        let rec = FaultRecord {
            kind: FaultKind::TransferCorruption,
            site: "h2d".to_string(),
            detail: "flipped bit 3 of element 7".to_string(),
        };
        let s = rec.to_string();
        assert!(s.contains("transfer-corruption"));
        assert!(s.contains("h2d"));
        for kind in [
            FaultKind::LaunchFailure,
            FaultKind::KernelTimeout,
            FaultKind::TransferCorruption,
            FaultKind::BitFlip,
            FaultKind::DeviceOom,
        ] {
            assert!(!kind.to_string().is_empty());
        }
    }

    #[test]
    fn log_caps_records_but_counts_everything() {
        let plan = FaultPlan::seeded(3).with_launch_failures(1.0);
        let mut inj = FaultInjector::new(plan);
        for _ in 0..FAULT_LOG_CAP + 10 {
            assert!(inj.next_launch_fault("k").is_some());
        }
        assert_eq!(inj.log().records.len(), FAULT_LOG_CAP);
        assert_eq!(inj.log().dropped, 10);
        assert_eq!(inj.log().injected(), FAULT_LOG_CAP + 10);
        assert!(inj.log().to_string().contains("faults injected"));
    }
}
