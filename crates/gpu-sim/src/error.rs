//! Simulator error type.

use std::fmt;

/// Errors raised by the GPU simulator: invalid launches, resource
/// exhaustion, and buffer misuse.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Device global memory exhausted.
    OutOfGlobalMemory {
        /// Bytes requested by the allocation.
        requested: usize,
        /// Bytes still available.
        available: usize,
    },
    /// A buffer id was used after being freed, or never existed.
    InvalidBuffer {
        /// The offending id (raw index).
        id: usize,
    },
    /// The launch configuration cannot run on this device at all.
    LaunchTooLarge {
        /// Which resource was exceeded.
        resource: &'static str,
        /// Requested amount.
        requested: usize,
        /// Device limit.
        limit: usize,
    },
    /// A launch parameter was malformed (zero blocks/threads, …).
    InvalidLaunch {
        /// Description of the problem.
        detail: String,
    },
    /// Two blocks wrote the same output element (a data race on real
    /// hardware). Only detected when race checking is enabled.
    WriteRace {
        /// Output buffer position that was written twice.
        index: usize,
        /// First writer block.
        first_block: u32,
        /// Second writer block.
        second_block: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfGlobalMemory {
                requested,
                available,
            } => write!(
                f,
                "out of global memory: requested {requested} B, {available} B available"
            ),
            SimError::InvalidBuffer { id } => write!(f, "invalid buffer id {id}"),
            SimError::LaunchTooLarge {
                resource,
                requested,
                limit,
            } => write!(
                f,
                "launch exceeds device limit: {resource} = {requested} > {limit}"
            ),
            SimError::InvalidLaunch { detail } => write!(f, "invalid launch: {detail}"),
            SimError::WriteRace {
                index,
                first_block,
                second_block,
            } => write!(
                f,
                "write race on output index {index}: blocks {first_block} and {second_block}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::LaunchTooLarge {
            resource: "threads per block",
            requested: 2048,
            limit: 1024,
        };
        assert!(e.to_string().contains("threads per block"));
        assert!(e.to_string().contains("2048"));
    }

    #[test]
    fn equality() {
        assert_eq!(
            SimError::InvalidBuffer { id: 3 },
            SimError::InvalidBuffer { id: 3 }
        );
    }
}
