//! Simulator error type.

use std::fmt;

/// Errors raised by the GPU simulator: invalid launches, resource
/// exhaustion, and buffer misuse.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Device global memory exhausted.
    OutOfGlobalMemory {
        /// Bytes requested by the allocation.
        requested: usize,
        /// Bytes still available.
        available: usize,
    },
    /// A buffer id was used after being freed, or never existed.
    InvalidBuffer {
        /// The offending id (raw index).
        id: usize,
    },
    /// The launch configuration cannot run on this device at all.
    LaunchTooLarge {
        /// Which resource was exceeded.
        resource: &'static str,
        /// Requested amount.
        requested: usize,
        /// Device limit.
        limit: usize,
    },
    /// A launch parameter was malformed (zero blocks/threads, …).
    InvalidLaunch {
        /// Description of the problem.
        detail: String,
    },
    /// Two blocks wrote the same output element (a data race on real
    /// hardware). Only detected when race checking is enabled.
    WriteRace {
        /// Output buffer position that was written twice.
        index: usize,
        /// First writer block.
        first_block: u32,
        /// Second writer block.
        second_block: u32,
    },
    /// A transient, retryable launch failure injected by the fault layer
    /// (the simulated analogue of a sporadic `cudaErrorLaunchFailure`).
    /// The kernel never ran and the simulated clock did not advance.
    TransientLaunchFailure {
        /// Label of the kernel that failed to launch.
        kernel: String,
    },
    /// The kernel was killed by the simulated watchdog (fault-injected).
    /// No results were produced and the simulated clock did not advance.
    KernelTimeout {
        /// Label of the kernel that timed out.
        kernel: String,
    },
}

impl SimError {
    /// True for faults that a retry can plausibly clear: injected launch
    /// failures, watchdog timeouts, and out-of-memory conditions (which a
    /// later attempt may satisfy after buffers are released). Structural
    /// errors — invalid launches, buffer misuse, write races — are not
    /// transient; retrying them verbatim cannot succeed.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SimError::TransientLaunchFailure { .. }
                | SimError::KernelTimeout { .. }
                | SimError::OutOfGlobalMemory { .. }
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfGlobalMemory {
                requested,
                available,
            } => write!(
                f,
                "out of global memory: requested {requested} B, {available} B available"
            ),
            SimError::InvalidBuffer { id } => write!(f, "invalid buffer id {id}"),
            SimError::LaunchTooLarge {
                resource,
                requested,
                limit,
            } => write!(
                f,
                "launch exceeds device limit: {resource} = {requested} > {limit}"
            ),
            SimError::InvalidLaunch { detail } => write!(f, "invalid launch: {detail}"),
            SimError::WriteRace {
                index,
                first_block,
                second_block,
            } => write!(
                f,
                "write race on output index {index}: blocks {first_block} and {second_block}"
            ),
            SimError::TransientLaunchFailure { kernel } => {
                write!(f, "transient launch failure: kernel `{kernel}` never ran")
            }
            SimError::KernelTimeout { kernel } => {
                write!(f, "kernel `{kernel}` killed by the simulated watchdog")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::LaunchTooLarge {
            resource: "threads per block",
            requested: 2048,
            limit: 1024,
        };
        assert!(e.to_string().contains("threads per block"));
        assert!(e.to_string().contains("2048"));
    }

    #[test]
    fn equality() {
        assert_eq!(
            SimError::InvalidBuffer { id: 3 },
            SimError::InvalidBuffer { id: 3 }
        );
    }

    #[test]
    fn fault_variants_display_and_transience() {
        let t = SimError::TransientLaunchFailure {
            kernel: "pcr[s=1]".to_string(),
        };
        assert!(t.to_string().contains("pcr[s=1]"));
        assert!(t.is_transient());
        let w = SimError::KernelTimeout {
            kernel: "thomas".to_string(),
        };
        assert!(w.to_string().contains("watchdog"));
        assert!(w.is_transient());
        assert!(SimError::OutOfGlobalMemory {
            requested: 8,
            available: 4
        }
        .is_transient());
        assert!(!SimError::InvalidBuffer { id: 0 }.is_transient());
        assert!(!SimError::WriteRace {
            index: 0,
            first_block: 0,
            second_block: 1
        }
        .is_transient());
    }
}
