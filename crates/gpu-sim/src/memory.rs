//! Simulated device: global memory management, kernel launching, and the
//! simulated clock/profile.

use crate::cost::{CostCounters, KernelStats};
use crate::device::DeviceSpec;
use crate::error::SimError;
use crate::fault::{FaultInjector, FaultLog, FaultPlan, FaultRecord};
use crate::launch::{
    BlockCtx, BlockIo, LaunchConfig, OutMode, ScatterWriter, ShadowHandle, SharedOut,
};
use crate::sanitizer::{BlockShadow, Hazard, InitMask, SanitizerReport};
use crate::timing;
use crate::Element;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::cell::RefCell;
use std::sync::Arc;
use trisolve_obs::{arg, Tracer};

/// Handle to a buffer in simulated global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(usize);

impl BufferId {
    /// Raw slot index (diagnostics only).
    pub fn raw(&self) -> usize {
        self.0
    }
}

/// Deferred-free list shared between a [`Gpu`] and its [`DeviceBuffer`]
/// guards. Guards cannot hold a mutable borrow of the device (the caller
/// needs it to launch kernels), so dropping a guard *enqueues* the free; the
/// device reclaims queued ids at its next mutating operation, and
/// [`Gpu::allocated_bytes`] already discounts queued-but-unreclaimed
/// buffers so accounting is exact at every instant.
type FreeQueue = Arc<Mutex<Vec<BufferId>>>;

/// RAII guard for a device allocation: dropping it frees the buffer.
///
/// Obtained from [`Gpu::alloc_guarded`] / [`Gpu::alloc_from_guarded`]. The
/// guard owns the allocation; the underlying [`BufferId`] (via
/// [`DeviceBuffer::id`]) is what kernel launches consume. Because the free
/// happens in `Drop`, buffers are released on *every* exit path — early
/// returns on kernel errors included — with no manual `gpu.free()` loops.
///
/// ```
/// use trisolve_gpu_sim::{DeviceSpec, Gpu};
///
/// let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
/// {
///     let buf = gpu.alloc_from_guarded(&[1.0, 2.0])?;
///     assert_eq!(gpu.view(buf.id())?, &[1.0, 2.0]);
/// } // guard dropped here
/// assert_eq!(gpu.allocated_bytes(), 0);
/// # Ok::<(), trisolve_gpu_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct DeviceBuffer {
    id: BufferId,
    queue: FreeQueue,
}

impl DeviceBuffer {
    /// The buffer handle, for uploads, launches and downloads.
    pub fn id(&self) -> BufferId {
        self.id
    }
}

impl Drop for DeviceBuffer {
    fn drop(&mut self) {
        self.queue.lock().push(self.id);
    }
}

/// One row of [`Gpu::profile_summary`]: a kernel family's aggregate cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// Kernel label prefix (before the first `[`).
    pub family: String,
    /// Number of launches.
    pub launches: usize,
    /// Total simulated seconds (execution + overhead).
    pub total_time_s: f64,
    /// Total useful global-memory bytes moved.
    pub payload_bytes: f64,
}

/// A simulated GPU: a device specification, global-memory buffers of element
/// type `E`, and a simulated clock advanced by every launch.
///
/// ```
/// use trisolve_gpu_sim::{DeviceSpec, Gpu, LaunchConfig, OutMode};
///
/// let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
/// let src = gpu.alloc_from(&[1.0, 2.0, 3.0, 4.0])?;
/// let dst = gpu.alloc(4)?;
///
/// // A 2-block kernel that doubles its chunk, metering as it goes.
/// let cfg = LaunchConfig::new("double", 2, 32);
/// gpu.launch(&cfg, &[src], &[(dst, OutMode::Chunked { chunk: 2 })], |ctx, io| {
///     let b = ctx.block_id as usize;
///     for i in 0..2 {
///         io.owned[0][i] = io.inputs[0][b * 2 + i] * 2.0;
///     }
///     ctx.gmem_read(2, 1);
///     ctx.gmem_write(2, 1);
///     ctx.ops(2);
/// })?;
///
/// assert_eq!(gpu.download(dst)?, vec![2.0, 4.0, 6.0, 8.0]);
/// assert!(gpu.elapsed_s() > 0.0); // the simulated clock advanced
/// # Ok::<(), trisolve_gpu_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct Gpu<E: Element> {
    spec: DeviceSpec,
    buffers: Vec<Option<Vec<E>>>,
    allocated_bytes: usize,
    /// Verify that scattered outputs are written at most once per element
    /// across the grid (on by default; a failure is a data race on real
    /// hardware).
    pub race_check: bool,
    timeline: Vec<KernelStats>,
    elapsed_s: f64,
    free_queue: FreeQueue,
    sanitizer: Option<SanitizerState>,
    tracer: Tracer,
    faults: Option<FaultInjector>,
}

/// Device-side sanitizer state: a global-memory init shadow per buffer slot
/// (parallel to `Gpu::buffers`; slots are never reused) plus the accumulated
/// hazard report.
#[derive(Debug)]
struct SanitizerState {
    init: Vec<InitMask>,
    report: SanitizerReport,
}

/// What one sanitized launch learned, to be folded into [`SanitizerState`]
/// after the output buffers are restored.
struct LaunchAudit {
    hazards: Vec<Hazard>,
    dropped: usize,
    /// `(buffer slot, written-mask)` per output: which elements this launch
    /// initialised.
    output_inits: Vec<(usize, InitMask)>,
}

impl<E: Element> Gpu<E> {
    /// Create a device.
    pub fn new(spec: DeviceSpec) -> Self {
        Self {
            spec,
            buffers: Vec::new(),
            allocated_bytes: 0,
            race_check: true,
            timeline: Vec::new(),
            elapsed_s: 0.0,
            free_queue: Arc::new(Mutex::new(Vec::new())),
            sanitizer: None,
            tracer: Tracer::disabled(),
            faults: None,
        }
    }

    /// Attach a tracer: every launch, H2D/D2H transfer and sanitizer
    /// hazard from now on emits into it (see [`trisolve_obs`]). The
    /// default tracer is disabled; tracing never feeds the cost model, so
    /// results and simulated timings are bit-identical either way.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The attached tracer handle (disabled unless [`Gpu::set_tracer`] was
    /// called). Clone it to emit correlated events from host-side layers.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Create a device with the dynamic sanitizer enabled (see
    /// [`crate::sanitizer`]): every launch shadow-tracks the accesses made
    /// through the tracked `BlockIo`/`ScatterWriter`/`BlockCtx` APIs and
    /// records memcheck / initcheck / racecheck hazards. Hazards are
    /// reported, not fatal; read them via [`Gpu::sanitizer_report`].
    ///
    /// The shadow state is disjoint from the cost meters, so simulated
    /// timings are bit-identical with the sanitizer on or off.
    pub fn with_sanitizer(spec: DeviceSpec) -> Self {
        let mut gpu = Self::new(spec);
        gpu.enable_sanitizer();
        gpu
    }

    /// Enable the sanitizer on an existing device. Buffers that already
    /// exist are conservatively treated as fully initialised (their history
    /// was not tracked). Forces `race_check` on: the scattered-output claim
    /// map doubles as the sanitizer's write shadow.
    pub fn enable_sanitizer(&mut self) {
        if self.sanitizer.is_some() {
            return;
        }
        self.race_check = true;
        let init = self
            .buffers
            .iter()
            .map(|b| InitMask::new_init(b.as_ref().map_or(0, Vec::len)))
            .collect();
        self.sanitizer = Some(SanitizerState {
            init,
            report: SanitizerReport::default(),
        });
    }

    /// True when the dynamic sanitizer is active.
    pub fn sanitizing(&self) -> bool {
        self.sanitizer.is_some()
    }

    /// The accumulated sanitizer findings, if the sanitizer is enabled.
    pub fn sanitizer_report(&self) -> Option<&SanitizerReport> {
        self.sanitizer.as_ref().map(|s| &s.report)
    }

    /// Take the accumulated findings, resetting the report (the init shadows
    /// survive). `None` when the sanitizer is off.
    pub fn take_sanitizer_report(&mut self) -> Option<SanitizerReport> {
        self.sanitizer
            .as_mut()
            .map(|s| std::mem::take(&mut s.report))
    }

    /// Create a device with a fault-injection campaign attached (see
    /// [`crate::fault`]). A disabled plan attaches nothing.
    pub fn with_faults(spec: DeviceSpec, plan: FaultPlan) -> Self {
        let mut gpu = Self::new(spec);
        gpu.enable_faults(plan);
        gpu
    }

    /// Attach a fault-injection campaign to an existing device, replacing
    /// any previous one. With [`FaultPlan::disabled`] (or any plan whose
    /// rates are all zero) **no injector is attached at all**: every
    /// operation takes the exact pre-fault-layer code path, so results and
    /// simulated timings are bit-identical to a build without the fault
    /// layer (the same strict no-op contract as the sanitizer and tracer).
    pub fn enable_faults(&mut self, plan: FaultPlan) {
        self.faults = plan.is_enabled().then(|| FaultInjector::new(plan));
    }

    /// True when a fault-injection campaign is active.
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// The injection history, if a campaign is active.
    pub fn fault_log(&self) -> Option<&FaultLog> {
        self.faults.as_ref().map(FaultInjector::log)
    }

    /// Take the injection history, resetting it (the campaign, its PRNG
    /// stream and its fault budget stay in place). `None` when no campaign
    /// is active.
    pub fn take_fault_log(&mut self) -> Option<FaultLog> {
        self.faults.as_mut().map(FaultInjector::take_log)
    }

    /// Advance the simulated clock without launching anything — how the
    /// resilience layer charges retry backoff to simulated time. Negative
    /// amounts are ignored (the clock is monotonic).
    pub fn advance_clock(&mut self, seconds: f64) {
        if seconds > 0.0 {
            self.elapsed_s += seconds;
        }
    }

    /// Emit a fault instant into the trace (no-op when no tracer attached).
    fn trace_fault(&self, rec: &FaultRecord) {
        if !self.tracer.is_enabled() {
            return;
        }
        self.tracer.instant(
            "resilience",
            "fault",
            self.elapsed_s * 1e6,
            vec![
                arg("kind", rec.kind.to_string()),
                arg("site", rec.site.clone()),
                arg("detail", rec.detail.clone()),
            ],
        );
        self.tracer.counter_add("faults_injected", 1);
    }

    /// The device specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Bytes currently allocated in global memory.
    ///
    /// Buffers whose [`DeviceBuffer`] guard has dropped but that have not
    /// yet been reclaimed do not count: logically they are already free.
    pub fn allocated_bytes(&self) -> usize {
        let pending: usize = self
            .free_queue
            .lock()
            .iter()
            .filter_map(|id| self.buffers.get(id.0).and_then(|b| b.as_ref()))
            .map(|b| b.len() * E::BYTES)
            .sum();
        self.allocated_bytes - pending
    }

    /// Release every buffer whose guard has dropped since the last mutating
    /// operation. Called automatically by [`Gpu::alloc`], [`Gpu::upload`],
    /// [`Gpu::launch`] and [`Gpu::free`]; callers never need to.
    fn reclaim(&mut self) {
        let pending = std::mem::take(&mut *self.free_queue.lock());
        for id in pending {
            // A guard can only be built from a live allocation, but tolerate
            // a manual `free` racing the guard's drop.
            let _ = self.free_now(id);
        }
    }

    /// Allocate a zero-initialised buffer of `len` elements.
    pub fn alloc(&mut self, len: usize) -> Result<BufferId, SimError> {
        self.reclaim();
        let bytes = len * E::BYTES;
        let cap = self.spec.queryable().global_mem_bytes;
        if self.allocated_bytes + bytes > cap {
            return Err(SimError::OutOfGlobalMemory {
                requested: bytes,
                available: cap - self.allocated_bytes,
            });
        }
        let fault = self.faults.as_mut().and_then(|f| f.next_alloc_fault(bytes));
        if let Some(rec) = fault {
            self.trace_fault(&rec);
            return Err(SimError::OutOfGlobalMemory {
                requested: bytes,
                available: cap - self.allocated_bytes,
            });
        }
        self.allocated_bytes += bytes;
        let id = BufferId(self.buffers.len());
        self.buffers.push(Some(vec![E::default(); len]));
        if let Some(st) = &mut self.sanitizer {
            // Although the functional simulator zero-fills, a fresh
            // allocation is *uninitialised* for initcheck purposes — exactly
            // `cudaMalloc` semantics.
            st.init.push(InitMask::new_uninit(len));
        }
        Ok(id)
    }

    /// Allocate a buffer initialised from host data (an H2D copy).
    pub fn alloc_from(&mut self, data: &[E]) -> Result<BufferId, SimError> {
        let id = self.alloc(data.len())?;
        self.buffers[id.0]
            .as_mut()
            .expect("freshly allocated")
            .copy_from_slice(data);
        if let Some(st) = &mut self.sanitizer {
            st.init[id.0].set_all();
        }
        self.corrupt_h2d(id, data.len());
        self.trace_transfer("h2d", id, data.len());
        Ok(id)
    }

    /// Fault hook for H2D copies: maybe flip one bit of one element that
    /// just landed in device buffer `id`.
    fn corrupt_h2d(&mut self, id: BufferId, len: usize) {
        let fault = self
            .faults
            .as_mut()
            .and_then(|f| f.next_transfer_fault("h2d", len, 8 * E::BYTES as u32));
        if let Some((index, bit, rec)) = fault {
            if let Some(buf) = self.buffers.get_mut(id.0).and_then(|b| b.as_mut()) {
                buf[index] = buf[index].flip_bit(bit);
            }
            self.trace_fault(&rec);
        }
    }

    /// Allocate a zero-initialised buffer owned by an RAII guard.
    pub fn alloc_guarded(&mut self, len: usize) -> Result<DeviceBuffer, SimError> {
        let id = self.alloc(len)?;
        Ok(DeviceBuffer {
            id,
            queue: Arc::clone(&self.free_queue),
        })
    }

    /// Allocate a guard-owned buffer initialised from host data.
    pub fn alloc_from_guarded(&mut self, data: &[E]) -> Result<DeviceBuffer, SimError> {
        let id = self.alloc_from(data)?;
        Ok(DeviceBuffer {
            id,
            queue: Arc::clone(&self.free_queue),
        })
    }

    /// Overwrite a buffer's contents from host data (lengths must match).
    pub fn upload(&mut self, id: BufferId, data: &[E]) -> Result<(), SimError> {
        self.reclaim();
        let buf = self.buffer_mut(id)?;
        if buf.len() != data.len() {
            return Err(SimError::InvalidBuffer { id: id.0 });
        }
        buf.copy_from_slice(data);
        if let Some(st) = &mut self.sanitizer {
            st.init[id.0].set_all();
        }
        self.corrupt_h2d(id, data.len());
        self.trace_transfer("h2d", id, data.len());
        Ok(())
    }

    /// Copy a buffer back to the host.
    ///
    /// Takes `&mut self` so the fault layer can corrupt the host copy (the
    /// device buffer itself is untouched by a D2H fault) — with no
    /// campaign attached the call is read-only in effect.
    pub fn download(&mut self, id: BufferId) -> Result<Vec<E>, SimError> {
        let mut out = self.view(id)?.to_vec();
        let fault = self
            .faults
            .as_mut()
            .and_then(|f| f.next_transfer_fault("d2h", out.len(), 8 * E::BYTES as u32));
        if let Some((index, bit, rec)) = fault {
            out[index] = out[index].flip_bit(bit);
            self.trace_fault(&rec);
        }
        self.trace_transfer("d2h", id, out.len());
        Ok(out)
    }

    /// Record one host↔device transfer as a trace instant plus a byte
    /// counter. No-op when no tracer is attached.
    fn trace_transfer(&self, direction: &'static str, id: BufferId, elems: usize) {
        if !self.tracer.is_enabled() {
            return;
        }
        let bytes = elems * E::BYTES;
        self.tracer.instant(
            "gpu",
            direction,
            self.elapsed_s * 1e6,
            vec![
                arg("buffer", id.0),
                arg("elems", elems),
                arg("bytes", bytes),
            ],
        );
        let counter = if direction == "h2d" {
            "h2d_bytes"
        } else {
            "d2h_bytes"
        };
        self.tracer.counter_add(counter, bytes as u64);
    }

    /// Borrow a buffer's contents.
    pub fn view(&self, id: BufferId) -> Result<&[E], SimError> {
        self.buffers
            .get(id.0)
            .and_then(|b| b.as_deref())
            .ok_or(SimError::InvalidBuffer { id: id.0 })
    }

    fn buffer_mut(&mut self, id: BufferId) -> Result<&mut Vec<E>, SimError> {
        self.buffers
            .get_mut(id.0)
            .and_then(|b| b.as_mut())
            .ok_or(SimError::InvalidBuffer { id: id.0 })
    }

    /// Free a buffer.
    pub fn free(&mut self, id: BufferId) -> Result<(), SimError> {
        self.reclaim();
        self.free_now(id)
    }

    fn free_now(&mut self, id: BufferId) -> Result<(), SimError> {
        let slot = self
            .buffers
            .get_mut(id.0)
            .ok_or(SimError::InvalidBuffer { id: id.0 })?;
        match slot.take() {
            Some(v) => {
                self.allocated_bytes -= v.len() * E::BYTES;
                Ok(())
            }
            None => Err(SimError::InvalidBuffer { id: id.0 }),
        }
    }

    /// Simulated time elapsed on this device, in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    /// Simulated time elapsed on this device, in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_s * 1e3
    }

    /// Reset the simulated clock and the launch profile (buffers survive).
    pub fn reset_clock(&mut self) {
        self.elapsed_s = 0.0;
        self.timeline.clear();
    }

    /// The per-launch profile since the last [`Gpu::reset_clock`].
    pub fn timeline(&self) -> &[KernelStats] {
        &self.timeline
    }

    /// Stats of the most recent launch.
    pub fn last_stats(&self) -> Option<&KernelStats> {
        self.timeline.last()
    }

    /// Aggregate the launch profile by kernel label prefix (the part before
    /// the first `[`): total simulated time, launch count, and payload
    /// bytes per kernel family, sorted by time descending. The inspection
    /// tool behind `trisolve-bench --bin profile`.
    pub fn profile_summary(&self) -> Vec<ProfileEntry> {
        let mut map: std::collections::BTreeMap<String, ProfileEntry> =
            std::collections::BTreeMap::new();
        for s in &self.timeline {
            let family = s.label.split('[').next().unwrap_or(&s.label).to_string();
            let e = map.entry(family.clone()).or_insert_with(|| ProfileEntry {
                family,
                launches: 0,
                total_time_s: 0.0,
                payload_bytes: 0.0,
            });
            e.launches += 1;
            e.total_time_s += s.total_time_s();
            e.payload_bytes += s.totals.gmem_payload_bytes();
        }
        let mut out: Vec<_> = map.into_values().collect();
        out.sort_by(|a, b| b.total_time_s.total_cmp(&a.total_time_s));
        out
    }

    /// Launch a kernel.
    ///
    /// * `inputs` are read-only: every block sees the full buffers.
    /// * `outputs` are write targets partitioned per [`OutMode`]; an output
    ///   buffer may not simultaneously be an input (double-buffer instead —
    ///   the same discipline a real grid-wide kernel needs).
    /// * `kernel` runs once per block (in parallel) with a [`BlockCtx`] for
    ///   cost metering and a [`BlockIo`] for data access.
    ///
    /// On success the simulated clock advances by the modelled execution
    /// time plus launch overhead, and the launch is appended to the profile.
    pub fn launch<F>(
        &mut self,
        cfg: &LaunchConfig,
        inputs: &[BufferId],
        outputs: &[(BufferId, OutMode)],
        kernel: F,
    ) -> Result<KernelStats, SimError>
    where
        F: Fn(&mut BlockCtx, &mut BlockIo<'_, E>) + Sync,
    {
        self.reclaim();

        // Validate the launch shape before touching any buffer.
        timing::residency(&self.spec, cfg)?;

        // No id may appear as both input and output, or twice as an output.
        for (oid, _) in outputs {
            if inputs.contains(oid) {
                return Err(SimError::InvalidLaunch {
                    detail: format!(
                        "buffer {} is both input and output; double-buffer instead",
                        oid.0
                    ),
                });
            }
            if outputs.iter().filter(|(o, _)| o == oid).count() > 1 {
                return Err(SimError::InvalidLaunch {
                    detail: format!("buffer {} appears twice as an output", oid.0),
                });
            }
        }

        // Fault hook: a transient launch failure or watchdog timeout aborts
        // here — the kernel never runs, buffers are untouched and the
        // simulated clock does not advance (same contract as the error
        // paths above).
        let launch_fault = self
            .faults
            .as_mut()
            .and_then(|f| f.next_launch_fault(&cfg.label));
        if let Some((err, rec)) = launch_fault {
            self.trace_fault(&rec);
            return Err(err);
        }

        // Take output buffers out of the pool so inputs can be borrowed
        // immutably at the same time.
        let mut taken: Vec<(BufferId, OutMode, Vec<E>)> = Vec::with_capacity(outputs.len());
        for (oid, mode) in outputs {
            let slot = self
                .buffers
                .get_mut(oid.0)
                .ok_or(SimError::InvalidBuffer { id: oid.0 })?;
            let buf = slot.take().ok_or(SimError::InvalidBuffer { id: oid.0 })?;
            taken.push((*oid, *mode, buf));
        }
        // Restore-on-exit guard pattern: from here on, every path must put
        // the buffers back before returning.
        let result = self.run_blocks(cfg, inputs, &mut taken, kernel);
        for (oid, _, buf) in taken {
            self.buffers[oid.0] = Some(buf);
        }

        let (stats, audit) = result?;

        // Fault hook: an ECC-style bit flip silently corrupts one element
        // of one output buffer after a successful launch. The cost model
        // and the sanitizer's init shadows are unaffected — the corruption
        // is only observable in the data (and to residual verification).
        let output_lens: Vec<usize> = outputs
            .iter()
            .map(|(oid, _)| self.buffers[oid.0].as_ref().map_or(0, Vec::len))
            .collect();
        let flip = self
            .faults
            .as_mut()
            .and_then(|f| f.next_output_bit_flip(&cfg.label, &output_lens, 8 * E::BYTES as u32));
        if let Some((slot, index, bit, rec)) = flip {
            let oid = outputs[slot].0;
            if let Some(buf) = self.buffers.get_mut(oid.0).and_then(|b| b.as_mut()) {
                buf[index] = buf[index].flip_bit(bit);
            }
            self.trace_fault(&rec);
        }

        if self.tracer.is_enabled() {
            self.trace_launch(&stats, audit.as_ref());
        }
        if let (Some(st), Some(audit)) = (&mut self.sanitizer, audit) {
            st.report.launches_checked += 1;
            st.report.hazards.extend(audit.hazards);
            st.report.dropped += audit.dropped;
            for (slot, mask) in audit.output_inits {
                st.init[slot].merge(&mask);
            }
        }
        self.elapsed_s += stats.total_time_s();
        self.timeline.push(stats.clone());
        Ok(stats)
    }

    /// Emit the per-launch trace span (plus counters and any sanitizer
    /// hazard instants) for a successful launch. Called before the clock
    /// advances, so the span starts at the pre-launch timestamp.
    fn trace_launch(&self, stats: &KernelStats, audit: Option<&LaunchAudit>) {
        let begin_us = self.elapsed_s * 1e6;
        let dur_us = stats.total_time_s() * 1e6;
        self.tracer.span(
            "gpu",
            stats.label.clone(),
            begin_us,
            dur_us,
            vec![
                arg("grid", stats.grid_blocks),
                arg("block", stats.block_threads),
                arg("blocks_per_sm", stats.residency.blocks_per_sm),
                arg("warps_per_sm", stats.residency.warps_per_sm),
                arg("residency_limit", stats.residency.limited_by),
                arg("limited_by", format!("{:?}", stats.limited_by)),
                arg("exec_s", stats.exec_time_s),
                arg("overhead_s", stats.overhead_s),
                arg("gmem_payload_bytes", stats.totals.gmem_payload_bytes()),
                arg("gmem_read_bytes", stats.totals.gmem_read_bytes as u64),
                arg("gmem_write_bytes", stats.totals.gmem_write_bytes as u64),
                arg("gmem_txn_bytes", stats.totals.gmem_txn_bytes as u64),
                arg("gmem_warp_txns", stats.totals.gmem_warp_txns as u64),
                arg("smem_accesses", stats.totals.smem_accesses as u64),
                arg("smem_conflicts", stats.totals.smem_conflict_accesses as u64),
                arg("thread_ops", stats.totals.thread_ops as u64),
                arg("barriers", stats.totals.barriers as u64),
            ],
        );
        self.tracer.counter_add("launches", 1);
        self.tracer.counter_add(
            "gmem_payload_bytes",
            stats.totals.gmem_payload_bytes() as u64,
        );
        self.tracer
            .counter_add("gmem_txn_bytes", stats.totals.gmem_txn_bytes as u64);
        self.tracer
            .counter_add("barriers", stats.totals.barriers as u64);
        if let Some(audit) = audit {
            for h in &audit.hazards {
                self.tracer.instant(
                    "sanitizer",
                    "hazard",
                    begin_us,
                    vec![
                        arg("kernel", h.kernel.as_str()),
                        arg("kind", h.kind.to_string()),
                        arg("site", h.second.site),
                        arg("region", h.region.to_string()),
                        arg("block", h.block),
                        arg("index", h.index),
                        arg("detail", h.to_string()),
                    ],
                );
                self.tracer.counter_add("hazards", 1);
            }
        }
    }

    fn run_blocks<F>(
        &self,
        cfg: &LaunchConfig,
        inputs: &[BufferId],
        taken: &mut [(BufferId, OutMode, Vec<E>)],
        kernel: F,
    ) -> Result<(KernelStats, Option<LaunchAudit>), SimError>
    where
        F: Fn(&mut BlockCtx, &mut BlockIo<'_, E>) + Sync,
    {
        let grid = cfg.grid_blocks;
        let input_views: Vec<&[E]> = inputs
            .iter()
            .map(|id| self.view(*id))
            .collect::<Result<_, _>>()?;
        // Init shadows of the input buffers, for the initcheck on loads.
        let input_masks: Option<Vec<&InitMask>> = self
            .sanitizer
            .as_ref()
            .map(|st| inputs.iter().map(|id| &st.init[id.0]).collect());
        let smem_elems = cfg.shared_mem_bytes / E::BYTES;

        // Partition chunked outputs into per-block slices and build the
        // shared scattered outputs.
        let mut chunk_iters: Vec<(usize, std::slice::ChunksMut<'_, E>)> = Vec::new();
        let mut scattered: Vec<SharedOut<E>> = Vec::new();
        // Buffer slot + chunk + full length per chunked output, and buffer
        // slot + length per scattered output, for the sanitizer audit.
        let mut chunked_meta: Vec<(usize, usize, usize)> = Vec::new();
        let mut scattered_meta: Vec<(usize, usize)> = Vec::new();
        // Order map so BlockIo presents outputs in caller order.
        enum Slot {
            Chunked,
            Scattered(usize),
        }
        let mut order: Vec<Slot> = Vec::with_capacity(taken.len());
        for (oid, mode, buf) in taken.iter_mut() {
            match mode {
                OutMode::Chunked { chunk } => {
                    if *chunk == 0 || buf.len() < *chunk * grid {
                        return Err(SimError::InvalidLaunch {
                            detail: format!(
                                "chunked output too small: len {} < chunk {} x grid {grid}",
                                buf.len(),
                                chunk
                            ),
                        });
                    }
                    order.push(Slot::Chunked);
                    chunked_meta.push((oid.0, *chunk, buf.len()));
                    chunk_iters.push((*chunk, buf.chunks_mut(*chunk)));
                }
                OutMode::Scattered => {
                    order.push(Slot::Scattered(scattered.len()));
                    scattered_meta.push((oid.0, buf.len()));
                    scattered.push(SharedOut::new(buf, self.race_check));
                }
            }
        }

        // Assemble per-block owned chunks (sequentially; they are disjoint).
        let mut per_block_owned: Vec<Vec<&mut [E]>> = (0..grid).map(|_| Vec::new()).collect();
        for (_, iter) in &mut chunk_iters {
            for (b, chunk) in iter.by_ref().take(grid).enumerate() {
                per_block_owned[b].push(chunk);
            }
        }

        let spec = &self.spec;
        let scattered_ref = &scattered;
        let order_ref = &order;
        let kernel_ref = &kernel;
        let input_views_ref = &input_views;
        let input_masks_ref = input_masks.as_deref();

        let mut per_block: Vec<(CostCounters, Option<BlockShadow>)> = per_block_owned
            .into_par_iter()
            .enumerate()
            .map(move |(b, owned)| {
                // The shadow cell must be declared before `ctx`/`io` so the
                // borrows they hold end first.
                let shadow_cell = input_masks_ref
                    .is_some()
                    .then(|| RefCell::new(BlockShadow::new(smem_elems, owned.len())));
                let mut ctx = BlockCtx::new(b as u32, cfg.block_threads, spec, E::BYTES);
                if let Some(cell) = &shadow_cell {
                    ctx.attach_shadow(cell);
                }
                // Reorder owned/scattered back into declaration order.
                let mut owned_iter = owned.into_iter();
                let mut io = BlockIo {
                    inputs: input_views_ref.clone(),
                    owned: Vec::new(),
                    scattered: Vec::new(),
                    shadow: match (&shadow_cell, input_masks_ref) {
                        (Some(cell), Some(input_init)) => Some(ShadowHandle { cell, input_init }),
                        _ => None,
                    },
                };
                for slot in order_ref {
                    match slot {
                        Slot::Chunked => {
                            io.owned.push(owned_iter.next().expect("chunk per output"));
                        }
                        Slot::Scattered(j) => {
                            io.scattered.push(ScatterWriter {
                                out: &scattered_ref[*j],
                                block: b as u32,
                                slot: *j,
                                shadow: shadow_cell.as_ref(),
                            });
                        }
                    }
                }
                kernel_ref(&mut ctx, &mut io);
                drop(io);
                let counters = ctx.into_counters();
                (counters, shadow_cell.map(RefCell::into_inner))
            })
            .collect();

        for out in &scattered {
            if let Some(err) = out.race_error() {
                return Err(err);
            }
        }

        let audit = input_masks.is_some().then(|| {
            self.build_audit(
                cfg,
                &mut per_block,
                &chunked_meta,
                &scattered_meta,
                &scattered,
            )
        });

        let counters: Vec<CostCounters> = per_block.into_iter().map(|(c, _)| c).collect();
        let stats = timing::kernel_time(&self.spec, cfg, &counters)?;
        Ok((stats, audit))
    }

    /// Fold the per-block shadows and the scattered-output claim maps into a
    /// launch audit: finished hazards (kernel label + block attached) plus
    /// the written-element masks to merge into the global init shadows.
    fn build_audit(
        &self,
        cfg: &LaunchConfig,
        per_block: &mut [(CostCounters, Option<BlockShadow>)],
        chunked_meta: &[(usize, usize, usize)],
        scattered_meta: &[(usize, usize)],
        scattered: &[SharedOut<E>],
    ) -> LaunchAudit {
        let mut hazards = Vec::new();
        let mut dropped = 0usize;
        let mut owned_masks: Vec<InitMask> = chunked_meta
            .iter()
            .map(|&(_, _, len)| InitMask::new_uninit(len))
            .collect();
        for (b, (_, shadow)) in per_block.iter_mut().enumerate() {
            let Some(shadow) = shadow.take() else {
                continue;
            };
            let (block_hazards, owned_writes, block_dropped) = shadow.into_parts();
            dropped += block_dropped;
            for h in block_hazards {
                hazards.push(Hazard {
                    kind: h.kind,
                    kernel: cfg.label.clone(),
                    block: b as u32,
                    region: h.region,
                    index: h.index,
                    first: h.first,
                    second: h.second,
                });
            }
            for (o, local) in owned_writes.into_iter().enumerate() {
                let (_, chunk, _) = chunked_meta[o];
                let base = b * chunk;
                match local {
                    Some(local) => {
                        for i in 0..chunk {
                            if local.get(i) {
                                owned_masks[o].set(base + i);
                            }
                        }
                    }
                    // No tracked store hit this output: assume an untracked
                    // kernel wrote its whole chunk. Conservative, but keeps
                    // kernels that index `io.owned` directly (demos, tests)
                    // from poisoning later launches with false uninit reads.
                    None => owned_masks[o].set_range(base, base + chunk),
                }
            }
        }
        let mut output_inits: Vec<(usize, InitMask)> = chunked_meta
            .iter()
            .zip(owned_masks)
            .map(|(&(slot, _, _), mask)| (slot, mask))
            .collect();
        for (j, out) in scattered.iter().enumerate() {
            let (slot, len) = scattered_meta[j];
            // `enable_sanitizer` forces race checking on, so the claim map —
            // which doubles as the write shadow — is always present.
            let mask = out
                .written_mask()
                .unwrap_or_else(|| InitMask::new_init(len));
            output_inits.push((slot, mask));
        }
        LaunchAudit {
            hazards,
            dropped,
            output_inits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> Gpu<f32> {
        Gpu::new(DeviceSpec::gtx_470())
    }

    #[test]
    fn alloc_upload_download_free() {
        let mut g = gpu();
        let id = g.alloc_from(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(g.download(id).unwrap(), vec![1.0, 2.0, 3.0]);
        g.upload(id, &[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(g.view(id).unwrap(), &[4.0, 5.0, 6.0]);
        assert_eq!(g.allocated_bytes(), 12);
        g.free(id).unwrap();
        assert_eq!(g.allocated_bytes(), 0);
        assert!(g.view(id).is_err());
        assert!(g.free(id).is_err());
    }

    #[test]
    fn allocation_respects_device_capacity() {
        let mut g = gpu();
        let cap = g.spec().queryable().global_mem_bytes / 4;
        assert!(matches!(
            g.alloc(cap + 1),
            Err(SimError::OutOfGlobalMemory { .. })
        ));
        // Exactly full is fine; one more element is not.
        let id = g.alloc(cap).unwrap();
        assert!(g.alloc(1).is_err());
        g.free(id).unwrap();
        assert!(g.alloc(1).is_ok());
    }

    #[test]
    fn upload_length_mismatch_rejected() {
        let mut g = gpu();
        let id = g.alloc(4).unwrap();
        assert!(g.upload(id, &[1.0]).is_err());
    }

    #[test]
    fn traced_launch_emits_span_and_transfer_events() {
        let mut g = gpu();
        let tracer = Tracer::enabled();
        g.set_tracer(tracer.clone());
        let src = g.alloc_from(&[1.0f32; 256]).unwrap();
        let dst = g.alloc(256).unwrap();
        let cfg = LaunchConfig::new("double[test]", 2, 128);
        g.launch(
            &cfg,
            &[src],
            &[(dst, OutMode::Chunked { chunk: 128 })],
            |ctx, io| {
                let b = ctx.block_id as usize;
                ctx.gmem_read(128, 1);
                ctx.gmem_write(128, 1);
                for i in 0..128 {
                    io.owned[0][i] = io.inputs[0][b * 128 + i] * 2.0;
                }
            },
        )
        .unwrap();
        let _ = g.download(dst).unwrap();

        let events = tracer.events();
        let span = events
            .iter()
            .find(|e| e.cat == "gpu" && e.name == "double[test]")
            .expect("launch span recorded");
        assert_eq!(span.family(), "double");
        assert_eq!(span.arg_u64("grid"), Some(2));
        assert_eq!(span.arg_u64("block"), Some(128));
        assert_eq!(span.arg_u64("gmem_read_bytes"), Some(256 * 4));
        assert_eq!(span.arg_u64("gmem_write_bytes"), Some(256 * 4));
        assert!((span.dur_us - g.elapsed_s() * 1e6).abs() < 1e-9);
        let h2d = events.iter().filter(|e| e.name == "h2d").count();
        let d2h = events.iter().filter(|e| e.name == "d2h").count();
        assert_eq!(h2d, 1);
        assert_eq!(d2h, 1);
        let counters = tracer.counters();
        assert!(counters.contains(&("launches", 1)));
        assert!(counters.contains(&("h2d_bytes", 256 * 4)));
        assert!(counters.contains(&("d2h_bytes", 256 * 4)));
    }

    #[test]
    fn tracing_leaves_clock_and_results_bit_identical() {
        let run = |traced: bool| -> (f64, Vec<f32>) {
            let mut g = gpu();
            if traced {
                g.set_tracer(Tracer::enabled());
            }
            let src = g
                .alloc_from(&(0..512).map(|i| i as f32).collect::<Vec<_>>())
                .unwrap();
            let dst = g.alloc(512).unwrap();
            let cfg = LaunchConfig::new("scale", 4, 128);
            g.launch(
                &cfg,
                &[src],
                &[(dst, OutMode::Chunked { chunk: 128 })],
                |ctx, io| {
                    let b = ctx.block_id as usize;
                    ctx.gmem_read(128, 1);
                    ctx.gmem_write(128, 1);
                    for i in 0..128 {
                        io.owned[0][i] = io.inputs[0][b * 128 + i] * 0.5;
                    }
                    ctx.ops(128);
                },
            )
            .unwrap();
            (g.elapsed_s(), g.download(dst).unwrap())
        };
        let (t_off, x_off) = run(false);
        let (t_on, x_on) = run(true);
        assert_eq!(t_off.to_bits(), t_on.to_bits());
        assert_eq!(x_off, x_on);
    }

    #[test]
    fn chunked_launch_copies_data() {
        let mut g = gpu();
        let src = g
            .alloc_from(&(0..1024).map(|i| i as f32).collect::<Vec<_>>())
            .unwrap();
        let dst = g.alloc(1024).unwrap();
        let cfg = LaunchConfig::new("copy", 8, 128);
        let stats = g
            .launch(
                &cfg,
                &[src],
                &[(dst, OutMode::Chunked { chunk: 128 })],
                |ctx, io| {
                    let b = ctx.block_id as usize;
                    let input = io.inputs[0];
                    ctx.gmem_read(128, 1);
                    ctx.gmem_write(128, 1);
                    for i in 0..128 {
                        io.owned[0][i] = input[b * 128 + i] * 2.0;
                    }
                    ctx.ops(128);
                },
            )
            .unwrap();
        let out = g.download(dst).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as f32) * 2.0);
        }
        assert_eq!(stats.totals.gmem_read_bytes, 1024.0 * 4.0);
        assert!(g.elapsed_s() > 0.0);
        assert_eq!(g.timeline().len(), 1);
    }

    #[test]
    fn scattered_launch_strided_write() {
        let mut g = gpu();
        let dst = g.alloc(64).unwrap();
        let cfg = LaunchConfig::new("scatter", 4, 32);
        // Block b writes elements b, b+4, b+8, ... (stride 4 chains).
        g.launch(&cfg, &[], &[(dst, OutMode::Scattered)], |ctx, io| {
            let b = ctx.block_id as usize;
            for k in 0..16 {
                io.scattered[0].set(b + 4 * k, ctx.block_id as f32);
            }
            ctx.gmem_write(16, 4);
        })
        .unwrap();
        let out = g.download(dst).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i % 4) as f32);
        }
    }

    #[test]
    fn scattered_race_detected() {
        let mut g = gpu();
        let dst = g.alloc(8).unwrap();
        let cfg = LaunchConfig::new("race", 2, 32);
        let err = g.launch(&cfg, &[], &[(dst, OutMode::Scattered)], |_, io| {
            io.scattered[0].set(3, 1.0); // both blocks write index 3
        });
        assert!(matches!(err, Err(SimError::WriteRace { index: 3, .. })));
        // Buffer must have been restored despite the failure.
        assert!(g.view(dst).is_ok());
        // Clock must not have advanced.
        assert_eq!(g.elapsed_s(), 0.0);
    }

    #[test]
    fn input_as_output_rejected() {
        let mut g = gpu();
        let buf = g.alloc(64).unwrap();
        let cfg = LaunchConfig::new("alias", 1, 32);
        let err = g.launch(&cfg, &[buf], &[(buf, OutMode::Scattered)], |_, _| {});
        assert!(matches!(err, Err(SimError::InvalidLaunch { .. })));
    }

    #[test]
    fn duplicate_output_rejected() {
        let mut g = gpu();
        let buf = g.alloc(64).unwrap();
        let cfg = LaunchConfig::new("dup", 1, 32);
        let err = g.launch(
            &cfg,
            &[],
            &[(buf, OutMode::Scattered), (buf, OutMode::Scattered)],
            |_, _| {},
        );
        assert!(matches!(err, Err(SimError::InvalidLaunch { .. })));
    }

    #[test]
    fn chunked_output_size_validated() {
        let mut g = gpu();
        let buf = g.alloc(64).unwrap();
        let cfg = LaunchConfig::new("small", 8, 32);
        let err = g.launch(
            &cfg,
            &[],
            &[(buf, OutMode::Chunked { chunk: 16 })], // needs 128 elements
            |_, _| {},
        );
        assert!(matches!(err, Err(SimError::InvalidLaunch { .. })));
    }

    #[test]
    fn multiple_outputs_in_order() {
        let mut g = gpu();
        let c1 = g.alloc(8).unwrap();
        let s1 = g.alloc(8).unwrap();
        let c2 = g.alloc(8).unwrap();
        let cfg = LaunchConfig::new("multi", 2, 32);
        g.launch(
            &cfg,
            &[],
            &[
                (c1, OutMode::Chunked { chunk: 4 }),
                (s1, OutMode::Scattered),
                (c2, OutMode::Chunked { chunk: 4 }),
            ],
            |ctx, io| {
                assert_eq!(io.owned.len(), 2);
                assert_eq!(io.scattered.len(), 1);
                io.owned[0][0] = 1.0;
                io.owned[1][0] = 2.0;
                io.scattered[0].set(ctx.block_id as usize, 3.0);
            },
        )
        .unwrap();
        assert_eq!(g.view(c1).unwrap()[0], 1.0);
        assert_eq!(g.view(c1).unwrap()[4], 1.0);
        assert_eq!(g.view(c2).unwrap()[0], 2.0);
        assert_eq!(g.view(s1).unwrap()[0], 3.0);
        assert_eq!(g.view(s1).unwrap()[1], 3.0);
    }

    #[test]
    fn clock_accumulates_and_resets() {
        let mut g = gpu();
        let dst = g.alloc(1024).unwrap();
        let cfg = LaunchConfig::new("k", 4, 64);
        for _ in 0..3 {
            g.launch(
                &cfg,
                &[],
                &[(dst, OutMode::Chunked { chunk: 256 })],
                |ctx, _| {
                    ctx.ops(1000);
                },
            )
            .unwrap();
        }
        assert_eq!(g.timeline().len(), 3);
        let t = g.elapsed_s();
        assert!(t > 0.0);
        g.reset_clock();
        assert_eq!(g.elapsed_s(), 0.0);
        assert!(g.timeline().is_empty());
        // Data survives reset.
        assert!(g.view(dst).is_ok());
    }

    #[test]
    fn profile_summary_aggregates_by_family() {
        let mut g = gpu();
        let dst = g.alloc(1024).unwrap();
        for stride in [1usize, 2] {
            let cfg = LaunchConfig::new(format!("ka[s={stride}]"), 4, 64);
            g.launch(
                &cfg,
                &[],
                &[(dst, OutMode::Chunked { chunk: 256 })],
                |ctx, _| {
                    ctx.ops(100);
                    ctx.gmem_write(256, 1);
                },
            )
            .unwrap();
        }
        let cfg = LaunchConfig::new("kb[x]", 4, 64);
        g.launch(
            &cfg,
            &[],
            &[(dst, OutMode::Chunked { chunk: 256 })],
            |ctx, _| {
                ctx.ops(100);
            },
        )
        .unwrap();
        let summary = g.profile_summary();
        assert_eq!(summary.len(), 2);
        let ka = summary.iter().find(|e| e.family == "ka").unwrap();
        assert_eq!(ka.launches, 2);
        assert_eq!(ka.payload_bytes, 2.0 * 4.0 * 1024.0);
        let total: f64 = summary.iter().map(|e| e.total_time_s).sum();
        assert!((total - g.elapsed_s()).abs() < 1e-15);
        // Sorted by time descending.
        assert!(summary[0].total_time_s >= summary[1].total_time_s);
    }

    #[test]
    fn guard_drop_frees_buffer() {
        let mut g = gpu();
        let kept = g.alloc(2).unwrap();
        {
            let b = g.alloc_from_guarded(&[1.0, 2.0, 3.0]).unwrap();
            assert_eq!(g.view(b.id()).unwrap(), &[1.0, 2.0, 3.0]);
            assert_eq!(g.allocated_bytes(), 5 * 4);
        }
        // Guard dropped: the bytes no longer count, even before reclaim.
        assert_eq!(g.allocated_bytes(), 2 * 4);
        // The next mutating op reclaims the slot for real.
        g.free(kept).unwrap();
        assert_eq!(g.allocated_bytes(), 0);
    }

    #[test]
    fn guard_drop_returns_capacity_for_new_allocs() {
        let mut g = gpu();
        let cap = g.spec().queryable().global_mem_bytes / 4;
        {
            let _all = g.alloc_guarded(cap).unwrap();
            assert!(g.alloc(1).is_err());
        }
        // The deferred free must be honoured before the capacity check.
        assert!(g.alloc(cap).is_ok());
    }

    #[test]
    fn guard_survives_early_return_paths() {
        fn failing(g: &mut Gpu<f32>) -> Result<(), SimError> {
            let a = g.alloc_guarded(64)?;
            let _b = g.alloc_guarded(64)?;
            let cfg = LaunchConfig::new("race", 2, 32);
            // Both blocks write index 0: the launch fails mid-pipeline and
            // the function unwinds through `?` with guards still live.
            g.launch(&cfg, &[], &[(a.id(), OutMode::Scattered)], |_, io| {
                io.scattered[0].set(0, 1.0);
            })?;
            Ok(())
        }
        let mut g = gpu();
        assert!(failing(&mut g).is_err());
        assert_eq!(g.allocated_bytes(), 0, "error path must not leak");
    }

    #[test]
    fn manual_free_of_guarded_buffer_is_tolerated() {
        let mut g = gpu();
        let b = g.alloc_guarded(8).unwrap();
        g.free(b.id()).unwrap();
        drop(b); // enqueues a second free of the same id
        assert!(g.alloc(1).is_ok()); // reclaim ignores the stale entry
        assert_eq!(g.allocated_bytes(), 4);
    }

    #[test]
    fn disabled_fault_plan_attaches_no_injector() {
        let mut g = gpu();
        g.enable_faults(FaultPlan::disabled());
        assert!(!g.faults_enabled());
        assert!(g.fault_log().is_none());
        let g2: Gpu<f32> = Gpu::with_faults(DeviceSpec::gtx_470(), FaultPlan::seeded(5));
        assert!(!g2.faults_enabled(), "all-zero rates attach nothing");
    }

    #[test]
    fn injected_launch_failure_leaves_clock_and_buffers_intact() {
        let mut g = gpu();
        g.enable_faults(FaultPlan::seeded(11).with_launch_failures(1.0));
        let dst = g.alloc(64).unwrap();
        let cfg = LaunchConfig::new("k", 2, 32);
        let err = g.launch(
            &cfg,
            &[],
            &[(dst, OutMode::Chunked { chunk: 32 })],
            |_, _| {},
        );
        assert!(matches!(err, Err(SimError::TransientLaunchFailure { .. })));
        assert_eq!(g.elapsed_s(), 0.0, "failed launch must not advance time");
        assert!(g.view(dst).is_ok(), "buffers restored");
        assert!(g.timeline().is_empty());
        assert_eq!(g.fault_log().unwrap().launch_failures, 1);
    }

    #[test]
    fn injected_timeout_is_a_distinct_error() {
        let mut g = gpu();
        g.enable_faults(FaultPlan::seeded(11).with_kernel_timeouts(1.0));
        let dst = g.alloc(64).unwrap();
        let cfg = LaunchConfig::new("k", 2, 32);
        let err = g.launch(
            &cfg,
            &[],
            &[(dst, OutMode::Chunked { chunk: 32 })],
            |_, _| {},
        );
        assert!(matches!(err, Err(SimError::KernelTimeout { .. })));
        assert_eq!(g.elapsed_s(), 0.0);
    }

    #[test]
    fn injected_oom_reports_out_of_memory() {
        let mut g = gpu();
        g.enable_faults(FaultPlan::seeded(2).with_alloc_failures(1.0));
        assert!(matches!(
            g.alloc(16),
            Err(SimError::OutOfGlobalMemory { .. })
        ));
        assert_eq!(g.allocated_bytes(), 0, "failed alloc must not leak");
        assert_eq!(g.fault_log().unwrap().alloc_failures, 1);
    }

    #[test]
    fn h2d_corruption_flips_exactly_one_element() {
        let mut g = gpu();
        g.enable_faults(
            FaultPlan::seeded(4)
                .with_transfer_corruption(1.0)
                .with_max_faults(1),
        );
        let data: Vec<f32> = (0..128).map(|i| i as f32).collect();
        let id = g.alloc_from(&data).unwrap();
        let on_device = g.view(id).unwrap();
        let diffs = on_device
            .iter()
            .zip(&data)
            .filter(|(a, b)| a.to_bits() != b.to_bits())
            .count();
        assert_eq!(diffs, 1);
        assert_eq!(g.fault_log().unwrap().transfer_corruptions, 1);
    }

    #[test]
    fn d2h_corruption_leaves_device_buffer_untouched() {
        let mut g = gpu();
        g.enable_faults(
            FaultPlan::seeded(4)
                .with_transfer_corruption(1.0)
                .with_max_faults(2),
        );
        let data = vec![1.0f32; 64];
        let id = g.alloc(64).unwrap();
        g.upload(id, &data).unwrap(); // fault #1 corrupts the device copy
        let device_copy = g.view(id).unwrap().to_vec();
        let host_copy = g.download(id).unwrap(); // fault #2 corrupts the host copy
        assert_ne!(host_copy, device_copy);
        assert_eq!(g.view(id).unwrap(), device_copy.as_slice());
    }

    #[test]
    fn output_bit_flip_corrupts_one_result_element() {
        let mut g = gpu();
        g.enable_faults(FaultPlan::seeded(6).with_bit_flips(1.0).with_max_faults(1));
        let dst = g.alloc(256).unwrap();
        let cfg = LaunchConfig::new("ones", 2, 32);
        g.launch(
            &cfg,
            &[],
            &[(dst, OutMode::Chunked { chunk: 128 })],
            |_, io| {
                for v in io.owned[0].iter_mut() {
                    *v = 1.0;
                }
            },
        )
        .unwrap();
        let out = g.download(dst).unwrap();
        let wrong = out.iter().filter(|v| **v != 1.0).count();
        assert_eq!(wrong, 1);
        assert!(g.elapsed_s() > 0.0, "a corrupted launch still ran");
        assert_eq!(g.fault_log().unwrap().bit_flips, 1);
    }

    #[test]
    fn fault_campaign_is_deterministic_per_seed() {
        let run = |seed: u64| -> (FaultLog, Vec<f32>) {
            let mut g = gpu();
            g.enable_faults(
                FaultPlan::seeded(seed)
                    .with_launch_failures(0.3)
                    .with_bit_flips(0.3)
                    .with_transfer_corruption(0.3),
            );
            let mut last = Vec::new();
            for round in 0..8 {
                let src = g
                    .alloc_from(&(0..64).map(|i| (i + round) as f32).collect::<Vec<_>>())
                    .unwrap();
                let dst = g.alloc(64).unwrap();
                let cfg = LaunchConfig::new("copy", 2, 32);
                let r = g.launch(
                    &cfg,
                    &[src],
                    &[(dst, OutMode::Chunked { chunk: 32 })],
                    |ctx, io| {
                        let b = ctx.block_id as usize;
                        for i in 0..32 {
                            io.owned[0][i] = io.inputs[0][b * 32 + i];
                        }
                    },
                );
                if r.is_ok() {
                    last = g.download(dst).unwrap();
                }
                g.free(src).unwrap();
                g.free(dst).unwrap();
            }
            (g.take_fault_log().unwrap(), last)
        };
        let (log_a, x_a) = run(99);
        let (log_b, x_b) = run(99);
        assert_eq!(log_a, log_b);
        assert!(log_a.injected() > 0, "campaign should have injected");
        assert_eq!(x_a, x_b);
        let (log_c, _) = run(100);
        assert_ne!(log_a, log_c, "different seed, different campaign");
    }

    #[test]
    fn advance_clock_is_monotonic() {
        let mut g = gpu();
        g.advance_clock(1.5e-3);
        g.advance_clock(-1.0);
        g.advance_clock(f64::NAN);
        assert_eq!(g.elapsed_s(), 1.5e-3);
    }

    #[test]
    fn f64_device_works() {
        let mut g: Gpu<f64> = Gpu::new(DeviceSpec::gtx_280());
        let id = g.alloc_from(&[1.0f64, 2.0]).unwrap();
        assert_eq!(g.allocated_bytes(), 16);
        assert_eq!(g.download(id).unwrap(), vec![1.0, 2.0]);
    }
}
