//! The kernel launch abstraction: launch configurations, the per-block
//! execution context with its cost meters, and the output-writing façades
//! (owned chunks vs. race-checked scattered writes).
//!
//! ## Programming model
//!
//! A kernel is a Rust closure invoked once per block. It receives:
//!
//! * a [`BlockCtx`] — block id plus the cost meters it must feed as it works
//!   (`gmem_read`, `smem`, `ops`, `sync`, …);
//! * a [`BlockIo`] — read-only views of the input buffers, an exclusive
//!   mutable chunk of each *chunked* output, and a [`ScatterWriter`] for each
//!   *scattered* output.
//!
//! Blocks run independently (in parallel via Rayon) and cannot communicate —
//! exactly the real-GPU constraint that a kernel has no global barrier. The
//! paper's stage 1 needs a global synchronisation per split and therefore
//! pays one *launch* per split; the simulator enforces that structure.
//!
//! Scattered outputs are race-checked: if two blocks write the same element,
//! the launch fails with [`SimError::WriteRace`] instead of silently
//! corrupting data (on hardware this would be undefined behaviour).
//!
//! When the device was built with [`crate::Gpu::with_sanitizer`], the
//! *tracked* access APIs — [`BlockIo::load`], [`BlockIo::store`],
//! [`ScatterWriter::set_at`], [`BlockCtx::track_smem_read`] /
//! [`BlockCtx::track_smem_write`] — additionally feed a per-block
//! [`BlockShadow`] that implements memcheck / initcheck / racecheck (see
//! [`crate::sanitizer`]). Without a sanitizer the tracked APIs degrade to
//! the plain accesses at the cost of one branch.

// The only unsafe code in the workspace lives in this module (`SharedOut`'s
// scattered-write pointer); the workspace-level `unsafe_code = "deny"` lint
// is lifted here and every unsafe block carries a SAFETY comment.
#![allow(unsafe_code)]

use crate::cost::CostCounters;
use crate::device::DeviceSpec;
use crate::error::SimError;
use crate::sanitizer::{BlockShadow, InitMask, Region};
use crate::Element;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Configuration of one kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    /// Label shown in profiles and error messages.
    pub label: String,
    /// Number of blocks in the grid.
    pub grid_blocks: usize,
    /// Threads per block.
    pub block_threads: usize,
    /// Shared memory bytes used per block.
    pub shared_mem_bytes: usize,
    /// Registers used per thread (residency pressure).
    pub regs_per_thread: usize,
}

impl LaunchConfig {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, grid_blocks: usize, block_threads: usize) -> Self {
        Self {
            label: label.into(),
            grid_blocks,
            block_threads,
            shared_mem_bytes: 0,
            regs_per_thread: 16,
        }
    }

    /// Builder-style shared memory setting.
    pub fn with_shared_mem(mut self, bytes: usize) -> Self {
        self.shared_mem_bytes = bytes;
        self
    }

    /// Builder-style register pressure setting.
    pub fn with_regs(mut self, regs_per_thread: usize) -> Self {
        self.regs_per_thread = regs_per_thread;
        self
    }
}

/// How an output buffer is partitioned among blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutMode {
    /// Block `b` exclusively owns elements `b*chunk .. (b+1)*chunk` and gets
    /// them as a readable *and* writable slice (its "own system" in global
    /// memory). The final chunk may be shorter.
    Chunked {
        /// Elements per block.
        chunk: usize,
    },
    /// Blocks may write anywhere, but every element at most once across the
    /// whole grid (checked). Write-only.
    Scattered,
}

/// Per-block execution context: identity plus cost meters.
///
/// The meters are the honesty contract of the simulation: every kernel must
/// record the memory traffic and arithmetic it performs. The tridiagonal
/// kernels' meter calls are verified against analytic expectations in the
/// `trisolve-core` tests.
#[derive(Debug)]
pub struct BlockCtx<'a> {
    /// This block's index within the grid.
    pub block_id: u32,
    /// Threads in this block.
    pub block_threads: usize,
    device: &'a DeviceSpec,
    elem_bytes: usize,
    counters: CostCounters,
    /// Sanitizer shadow state, present only under `Gpu::with_sanitizer`.
    /// Kept strictly apart from the cost counters so tracking can never
    /// perturb a simulated timing.
    shadow: Option<&'a RefCell<BlockShadow>>,
}

impl<'a> BlockCtx<'a> {
    pub(crate) fn new(
        block_id: u32,
        block_threads: usize,
        device: &'a DeviceSpec,
        elem_bytes: usize,
    ) -> Self {
        Self {
            block_id,
            block_threads,
            device,
            elem_bytes,
            counters: CostCounters::default(),
            shadow: None,
        }
    }

    pub(crate) fn attach_shadow(&mut self, cell: &'a RefCell<BlockShadow>) {
        self.shadow = Some(cell);
    }

    /// True when this launch runs under the dynamic sanitizer; kernels use
    /// this to guard replay-only tracking work that would otherwise burn
    /// host time for nothing.
    pub fn sanitizing(&self) -> bool {
        self.shadow.is_some()
    }

    /// Sanitizer hook: record that logical thread `tid` *reads* shared-memory
    /// element `idx` at source site `site`. No-op without a sanitizer or when
    /// the launch declared no shared memory; checks bounds against the
    /// declared shared allocation, reads-before-any-write (initcheck) and
    /// same-interval conflicts with other threads (racecheck).
    pub fn track_smem_read(&mut self, idx: usize, tid: usize, site: &'static str) {
        let Some(cell) = self.shadow else { return };
        let mut s = cell.borrow_mut();
        let elems = s.smem_elems();
        if elems == 0 {
            return;
        }
        if idx >= elems {
            s.record_oob(Region::Shared, idx, elems, tid, site, false);
            return;
        }
        if !s.smem_initialized(idx) {
            s.record_uninit(Region::Shared, idx, tid, site);
        }
        s.record_access(Region::Shared, idx, tid, site, false);
    }

    /// Sanitizer hook: record that logical thread `tid` *writes* shared-memory
    /// element `idx` at source site `site` (see [`BlockCtx::track_smem_read`]).
    pub fn track_smem_write(&mut self, idx: usize, tid: usize, site: &'static str) {
        let Some(cell) = self.shadow else { return };
        let mut s = cell.borrow_mut();
        let elems = s.smem_elems();
        if elems == 0 {
            return;
        }
        if idx >= elems {
            s.record_oob(Region::Shared, idx, elems, tid, site, true);
            return;
        }
        s.record_access(Region::Shared, idx, tid, site, true);
        s.mark_smem_write(idx);
    }

    /// Record a global-memory read of `elems` elements accessed with an
    /// element stride of `stride_elems` between consecutive threads
    /// (`1` = perfectly coalesced).
    pub fn gmem_read(&mut self, elems: usize, stride_elems: usize) {
        let (payload, moved, txns) = self.traffic(elems, stride_elems);
        self.counters.gmem_read_bytes += payload;
        self.counters.gmem_txn_bytes += moved;
        self.counters.gmem_warp_txns += txns;
    }

    /// Record a global-memory write (same stride semantics as `gmem_read`).
    pub fn gmem_write(&mut self, elems: usize, stride_elems: usize) {
        let (payload, moved, txns) = self.traffic(elems, stride_elems);
        self.counters.gmem_write_bytes += payload;
        self.counters.gmem_txn_bytes += moved;
        self.counters.gmem_warp_txns += txns;
    }

    fn traffic(&self, elems: usize, stride_elems: usize) -> (f64, f64, f64) {
        let b = self.elem_bytes as f64;
        let payload = elems as f64 * b;
        let moved_per_elem = if stride_elems <= 1 {
            b
        } else {
            // Each warp's accesses spread over `stride` segments; the memory
            // system moves at least one minimum transaction per element once
            // the stride exceeds the transaction width.
            (b * stride_elems as f64).min(self.device.hidden().min_transaction_bytes)
        }
        .max(b);
        let moved = elems as f64 * moved_per_elem;
        // Issue slots: a fully coalesced warp access needs one slot per
        // 128 bytes; a strided access serialises into one transaction per
        // covered minimum-transaction segment, up to one per element — the
        // latency-side cost of poor coalescing.
        let warp = self.device.queryable().warp_size as f64;
        let coalesced_slots = (b * warp / 128.0).max(1.0);
        let slots_per_warp = if stride_elems <= 1 {
            coalesced_slots
        } else {
            (warp * b * stride_elems as f64 / self.device.hidden().min_transaction_bytes)
                .min(warp)
                .max(coalesced_slots)
        };
        let txns = (elems as f64 / warp).ceil() * slots_per_warp;
        (payload, moved, txns)
    }

    /// Record a global read of `total` elements of which only `unique` are
    /// distinct — the overlapping neighbour streams of a PCR splitting
    /// kernel, staged through shared memory (or caught by the texture/L1
    /// cache on parts that have one). The redundant fraction that the
    /// device's `read_reuse_fraction` captures never reaches the bus.
    pub fn gmem_read_staged(&mut self, total: usize, unique: usize, stride_elems: usize) {
        debug_assert!(unique <= total);
        let reuse = self.device.hidden().read_reuse_fraction;
        let redundant_missed = (total - unique) as f64 * (1.0 - reuse);
        let effective = unique as f64 + redundant_missed;
        // Per-element costs derived from one full warp's traffic.
        let warp = self.device.queryable().warp_size as f64;
        let (payload_warp, moved_warp, txn_warp) =
            self.traffic(self.device.queryable().warp_size, stride_elems);
        self.counters.gmem_read_bytes += unique as f64 * payload_warp / warp;
        self.counters.gmem_txn_bytes += effective * moved_warp / warp;
        self.counters.gmem_warp_txns += effective * txn_warp / warp;
    }

    /// Record a global read that is perfectly coalesced but *over-fetches*:
    /// `factor`× the payload is moved to obtain `elems` useful elements (the
    /// tile-transpose load of the base kernel's coalesced variant, which
    /// reads whole contiguous tiles and keeps only its own chain's
    /// elements).
    pub fn gmem_read_overfetch(&mut self, elems: usize, factor: f64) {
        assert!(factor >= 1.0, "overfetch factor must be >= 1");
        let b = self.elem_bytes as f64;
        let payload = elems as f64 * b;
        self.counters.gmem_read_bytes += payload;
        self.counters.gmem_txn_bytes += payload * factor;
        let warp = self.device.queryable().warp_size as f64;
        self.counters.gmem_warp_txns +=
            (elems as f64 / warp).ceil() * factor * (b * warp / 128.0).max(1.0);
    }

    /// Meter a *serial phase*: each of `active_threads` threads executes
    /// `steps` dependent steps of `ops_per_step` operations (the Thomas stage
    /// of the hybrid base kernel, where one thread owns one subsystem).
    ///
    /// Two SIMT effects are charged beyond the raw operation count: idle
    /// lanes in partially-filled warps, and the *dependency latency* of each
    /// serial step (division + shared-memory round trip) that goes unhidden
    /// when the block has fewer active warps than the device's pipeline
    /// depth (`smem_pipeline_warps`). The latter is what makes switching to
    /// Thomas too early expensive (paper Figure 6: "at the cost of less
    /// parallelism to hide memory latency").
    pub fn serial_phase(&mut self, steps: usize, ops_per_step: usize, active_threads: usize) {
        if steps == 0 || active_threads == 0 {
            return;
        }
        let q = self.device.queryable();
        let h = self.device.hidden();
        let warps = active_threads.div_ceil(q.warp_size);
        let padded_threads = warps * q.warp_size;
        let issue_ops = steps as f64 * ops_per_step as f64 * padded_threads as f64;
        let unhidden = (1.0 - warps as f64 / h.smem_pipeline_warps).max(0.0);
        let dep_cycles = steps as f64 * h.serial_dep_latency_cycles * unhidden;
        // The timing model divides thread_ops by the lane count to get
        // cycles; convert the latency cycles into equivalent thread-ops.
        self.counters.thread_ops += issue_ops + dep_cycles * q.thread_procs_per_sm as f64;
    }

    /// Record `accesses` conflict-free shared-memory word accesses.
    pub fn smem(&mut self, accesses: usize) {
        self.counters.smem_accesses += accesses as f64;
    }

    /// Record shared-memory accesses serialised `ways`-fold by bank
    /// conflicts (`ways = 1` means conflict-free).
    pub fn smem_conflict(&mut self, accesses: usize, ways: f64) {
        assert!(ways >= 1.0, "conflict degree must be >= 1");
        self.counters.smem_accesses += accesses as f64;
        self.counters.smem_conflict_accesses += accesses as f64 * (ways - 1.0);
    }

    /// Record shared-memory accesses at a power-of-two element stride
    /// between consecutive threads — the classic cyclic-reduction pattern.
    /// The conflict degree is `min(stride, bank count)`, additionally
    /// multiplied by the 64-bit serialisation factor for wide elements.
    pub fn smem_strided(&mut self, accesses: usize, stride: usize) {
        let banks = self.device.hidden().shared_banks as f64;
        let word_factor = (self.elem_bytes as f64 / 4.0).max(1.0);
        let ways = (stride as f64).min(banks).max(1.0) * word_factor;
        self.smem_conflict(accesses, ways);
    }

    /// Record `n` arithmetic thread-operations.
    pub fn ops(&mut self, n: usize) {
        self.counters.thread_ops += n as f64;
    }

    /// Record a block-wide barrier (`__syncthreads`). Under the sanitizer
    /// this also closes the racecheck *barrier interval*: accesses before
    /// the barrier happen-before accesses after it.
    pub fn sync(&mut self) {
        self.counters.barriers += 1.0;
        if let Some(cell) = self.shadow {
            cell.borrow_mut().barrier();
        }
    }

    /// The device this block runs on (queryable part is fair game for
    /// kernels, e.g. warp size).
    pub fn device(&self) -> &DeviceSpec {
        self.device
    }

    /// Snapshot of the accumulated counters.
    pub fn counters(&self) -> &CostCounters {
        &self.counters
    }

    pub(crate) fn into_counters(self) -> CostCounters {
        self.counters
    }
}

/// Shared scattered-output state for one buffer during one launch.
pub(crate) struct SharedOut<E> {
    ptr: *mut E,
    len: usize,
    claims: Option<Vec<AtomicU32>>,
    race: AtomicBool,
    race_info: Mutex<Option<(usize, u32, u32)>>,
}

// SAFETY: blocks write disjoint elements (enforced by the claim map when
// race checking is on; promised by the kernel author otherwise), so
// concurrent access through the raw pointer never aliases a write.
unsafe impl<E: Send> Send for SharedOut<E> {}
unsafe impl<E: Send> Sync for SharedOut<E> {}

const UNCLAIMED: u32 = u32::MAX;

impl<E: Element> SharedOut<E> {
    pub(crate) fn new(buf: &mut [E], race_check: bool) -> Self {
        let claims = race_check.then(|| {
            let mut v = Vec::with_capacity(buf.len());
            v.resize_with(buf.len(), || AtomicU32::new(UNCLAIMED));
            v
        });
        Self {
            ptr: buf.as_mut_ptr(),
            len: buf.len(),
            claims,
            race: AtomicBool::new(false),
            race_info: Mutex::new(None),
        }
    }

    fn set(&self, block: u32, idx: usize, v: E) {
        assert!(
            idx < self.len,
            "scattered write out of bounds: {idx} >= {}",
            self.len
        );
        if let Some(claims) = &self.claims {
            let prev = claims[idx].swap(block, Ordering::Relaxed);
            if prev != UNCLAIMED && prev != block {
                self.race.store(true, Ordering::Relaxed);
                let mut info = self.race_info.lock();
                if info.is_none() {
                    *info = Some((idx, prev, block));
                }
            }
        }
        // SAFETY: idx bounds-checked above; disjointness per the claim map.
        unsafe {
            *self.ptr.add(idx) = v;
        }
    }

    /// Initcheck shadow of this launch's writes: which elements were
    /// claimed. `None` when race checking (and hence the claim map) is off.
    pub(crate) fn written_mask(&self) -> Option<InitMask> {
        let claims = self.claims.as_ref()?;
        let mut mask = InitMask::new_uninit(self.len);
        for (i, c) in claims.iter().enumerate() {
            if c.load(Ordering::Relaxed) != UNCLAIMED {
                mask.set(i);
            }
        }
        Some(mask)
    }

    pub(crate) fn race_error(&self) -> Option<SimError> {
        if self.race.load(Ordering::Relaxed) {
            let (index, first_block, second_block) = self.race_info.lock().unwrap_or((0, 0, 0));
            Some(SimError::WriteRace {
                index,
                first_block,
                second_block,
            })
        } else {
            None
        }
    }
}

/// Write façade handed to a block for one scattered output buffer.
pub struct ScatterWriter<'a, E: Element> {
    pub(crate) out: &'a SharedOut<E>,
    pub(crate) block: u32,
    /// Position of this buffer among the launch's scattered outputs, for
    /// hazard reports.
    pub(crate) slot: usize,
    pub(crate) shadow: Option<&'a RefCell<BlockShadow>>,
}

impl<E: Element> std::fmt::Debug for ScatterWriter<'_, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScatterWriter")
            .field("block", &self.block)
            .field("slot", &self.slot)
            .field("len", &self.out.len)
            .finish_non_exhaustive()
    }
}

impl<E: Element> ScatterWriter<'_, E> {
    /// Write `v` at `idx`. Panics if out of bounds; flags a race if another
    /// block already wrote this element.
    #[inline]
    pub fn set(&self, idx: usize, v: E) {
        self.out.set(self.block, idx, v);
    }

    /// Tracked write: like [`ScatterWriter::set`], but reports the logical
    /// thread `tid` and source site to the sanitizer. Under the sanitizer an
    /// out-of-bounds index is *recorded* and the write dropped (so the launch
    /// can keep collecting hazards) instead of panicking; same-block
    /// same-interval conflicts between different threads are racechecked.
    /// Without a sanitizer this is exactly `set`.
    #[inline]
    pub fn set_at(&self, idx: usize, v: E, tid: usize, site: &'static str) {
        if let Some(cell) = self.shadow {
            let mut s = cell.borrow_mut();
            if idx >= self.out.len {
                s.record_oob(
                    Region::ScatteredOut(self.slot),
                    idx,
                    self.out.len,
                    tid,
                    site,
                    true,
                );
                return;
            }
            s.record_access(Region::ScatteredOut(self.slot), idx, tid, site, true);
        }
        self.out.set(self.block, idx, v);
    }

    /// Length of the underlying buffer.
    pub fn len(&self) -> usize {
        self.out.len
    }

    /// True if the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.out.len == 0
    }
}

/// Per-block sanitizer wiring carried by [`BlockIo`]: the shadow cell plus
/// views of the launch inputs' global-memory init masks.
pub(crate) struct ShadowHandle<'a> {
    pub(crate) cell: &'a RefCell<BlockShadow>,
    pub(crate) input_init: &'a [&'a InitMask],
}

/// Everything a block can touch: input views, its owned chunks, and the
/// scattered writers, in the order the corresponding buffers were passed to
/// [`crate::Gpu::launch`].
pub struct BlockIo<'a, E: Element> {
    /// Read-only full views of the input buffers.
    pub inputs: Vec<&'a [E]>,
    /// This block's exclusive read-write chunk of each `Chunked` output.
    pub owned: Vec<&'a mut [E]>,
    /// Writers for each `Scattered` output.
    pub scattered: Vec<ScatterWriter<'a, E>>,
    pub(crate) shadow: Option<ShadowHandle<'a>>,
}

impl<E: Element> std::fmt::Debug for BlockIo<'_, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockIo")
            .field("inputs", &self.inputs.len())
            .field("owned", &self.owned.len())
            .field("scattered", &self.scattered.len())
            .finish_non_exhaustive()
    }
}

impl<'a, E: Element> BlockIo<'a, E> {
    /// Tracked read of `inputs[input][idx]` by logical thread `tid` at
    /// source site `site`.
    ///
    /// Without a sanitizer this is a plain (panicking) index. Under the
    /// sanitizer, an out-of-bounds index is recorded as a memcheck hazard
    /// and `E::default()` is returned, and a read of an element no upload or
    /// prior kernel ever wrote is recorded as an initcheck hazard. Input
    /// buffers are immutable for the whole launch, so reads need no
    /// racecheck.
    #[inline]
    pub fn load(&self, input: usize, idx: usize, tid: usize, site: &'static str) -> E {
        let arr = self.inputs[input];
        if let Some(h) = &self.shadow {
            if idx >= arr.len() {
                h.cell.borrow_mut().record_oob(
                    Region::Input(input),
                    idx,
                    arr.len(),
                    tid,
                    site,
                    false,
                );
                return E::default();
            }
            if !h.input_init[input].get(idx) {
                h.cell
                    .borrow_mut()
                    .record_uninit(Region::Input(input), idx, tid, site);
            }
        }
        arr[idx]
    }

    /// Tracked write of `owned[out][idx] = v` (block-local index) by logical
    /// thread `tid` at source site `site`.
    ///
    /// Without a sanitizer this is a plain (panicking) index assignment.
    /// Under the sanitizer an out-of-bounds index is recorded and the write
    /// dropped; in-bounds writes are racechecked against same-interval
    /// accesses by other threads and feed the chunk's init shadow.
    #[inline]
    pub fn store(&mut self, out: usize, idx: usize, v: E, tid: usize, site: &'static str) {
        let chunk_len = self.owned[out].len();
        if let Some(h) = &self.shadow {
            let mut s = h.cell.borrow_mut();
            if idx >= chunk_len {
                s.record_oob(Region::ChunkedOut(out), idx, chunk_len, tid, site, true);
                return;
            }
            s.record_access(Region::ChunkedOut(out), idx, tid, site, true);
            s.mark_owned_write(out, idx, chunk_len);
        }
        self.owned[out][idx] = v;
    }
}

/// Aliases to keep `Gpu::launch`'s signature readable.
pub type BlockOut<'a, E> = BlockIo<'a, E>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    fn ctx(dev: &DeviceSpec) -> BlockCtx<'_> {
        BlockCtx::new(0, 128, dev, 4)
    }

    #[test]
    fn coalesced_traffic_is_payload() {
        let dev = DeviceSpec::gtx_470();
        let mut c = ctx(&dev);
        c.gmem_read(1024, 1);
        assert_eq!(c.counters().gmem_read_bytes, 4096.0);
        assert_eq!(c.counters().gmem_txn_bytes, 4096.0);
        assert_eq!(c.counters().coalescing_efficiency(), 1.0);
    }

    #[test]
    fn strided_traffic_inflates_up_to_transaction_floor() {
        let dev = DeviceSpec::gtx_470();
        // stride 2: 8 bytes moved per 4-byte element.
        let mut c = ctx(&dev);
        c.gmem_read(100, 2);
        assert_eq!(c.counters().gmem_txn_bytes, 800.0);
        // stride 64: capped at the 32-byte minimum transaction.
        let mut c = ctx(&dev);
        c.gmem_read(100, 64);
        assert_eq!(c.counters().gmem_txn_bytes, 3200.0);
        assert!((c.counters().coalescing_efficiency() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn writes_and_reads_accumulate_separately() {
        let dev = DeviceSpec::gtx_280();
        let mut c = ctx(&dev);
        c.gmem_read(10, 1);
        c.gmem_write(20, 1);
        assert_eq!(c.counters().gmem_read_bytes, 40.0);
        assert_eq!(c.counters().gmem_write_bytes, 80.0);
        assert_eq!(c.counters().gmem_payload_bytes(), 120.0);
    }

    #[test]
    fn smem_conflicts_add_serialised_accesses() {
        let dev = DeviceSpec::geforce_8800_gtx();
        let mut c = ctx(&dev);
        c.smem(100);
        c.smem_conflict(100, 2.0);
        assert_eq!(c.counters().smem_accesses, 200.0);
        assert_eq!(c.counters().smem_conflict_accesses, 100.0);
    }

    #[test]
    fn ops_and_sync_meter() {
        let dev = DeviceSpec::gtx_470();
        let mut c = ctx(&dev);
        c.ops(500);
        c.sync();
        c.sync();
        assert_eq!(c.counters().thread_ops, 500.0);
        assert_eq!(c.counters().barriers, 2.0);
    }

    #[test]
    fn scattered_out_detects_races() {
        let mut buf = vec![0.0f32; 8];
        let out = SharedOut::new(&mut buf, true);
        out.set(0, 3, 1.0);
        out.set(0, 3, 2.0); // same block rewriting: fine
        assert!(out.race_error().is_none());
        out.set(1, 3, 3.0); // different block: race
        let err = out.race_error().unwrap();
        assert!(matches!(err, SimError::WriteRace { index: 3, .. }));
    }

    #[test]
    fn scattered_out_without_checking_allows_overlap() {
        let mut buf = vec![0.0f32; 4];
        let out = SharedOut::new(&mut buf, false);
        out.set(0, 1, 1.0);
        out.set(1, 1, 2.0);
        assert!(out.race_error().is_none());
        drop(out);
        assert_eq!(buf[1], 2.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn scattered_out_bounds_checked() {
        let mut buf = vec![0.0f32; 4];
        let out = SharedOut::new(&mut buf, true);
        out.set(0, 4, 1.0);
    }

    #[test]
    fn staged_reads_discount_redundant_traffic() {
        let dev = DeviceSpec::gtx_470(); // read_reuse_fraction 0.85
        let mut c = ctx(&dev);
        // 12 accesses per eq, 4 unique: payload counts unique only; the
        // redundant 8 are 85% captured.
        c.gmem_read_staged(1200, 400, 1);
        assert_eq!(c.counters().gmem_read_bytes, 400.0 * 4.0);
        let expect_moved = (400.0 + 800.0 * 0.15) * 4.0;
        assert!((c.counters().gmem_txn_bytes - expect_moved).abs() < 1e-9);

        // A plain read of the same unique payload moves less than the
        // staged read (which pays for cache misses) but more than nothing.
        let mut plain = ctx(&dev);
        plain.gmem_read(400, 1);
        assert!(plain.counters().gmem_txn_bytes < c.counters().gmem_txn_bytes);
    }

    #[test]
    fn staged_reads_issue_one_slot_per_element_when_scattered() {
        let dev = DeviceSpec::gtx_470();
        let mut strided = ctx(&dev);
        strided.gmem_read_staged(320, 320, 64);
        let mut coalesced = ctx(&dev);
        coalesced.gmem_read_staged(320, 320, 1);
        // Fully scattered: one 32-byte transaction per element (f32), i.e.
        // 32 slots per warp vs 1 when coalesced.
        assert!(strided.counters().gmem_warp_txns >= 30.0 * coalesced.counters().gmem_warp_txns);
    }

    #[test]
    fn serial_phase_penalises_few_warps() {
        let dev = DeviceSpec::gtx_470(); // pipeline depth 8 warps
        let mut narrow = ctx(&dev);
        narrow.serial_phase(16, 8, 32); // 1 warp active
        let mut wide = ctx(&dev);
        wide.serial_phase(4, 8, 256); // same total issue work, 8 warps
        assert!(
            narrow.counters().thread_ops > 2.0 * wide.counters().thread_ops,
            "narrow {} vs wide {}",
            narrow.counters().thread_ops,
            wide.counters().thread_ops
        );
    }

    #[test]
    fn serial_phase_zero_cases() {
        let dev = DeviceSpec::gtx_280();
        let mut c = ctx(&dev);
        c.serial_phase(0, 8, 64);
        c.serial_phase(8, 8, 0);
        assert_eq!(c.counters().thread_ops, 0.0);
    }

    #[test]
    fn overfetch_scales_moved_not_payload() {
        let dev = DeviceSpec::gtx_470();
        let mut c = ctx(&dev);
        c.gmem_read_overfetch(100, 8.0);
        assert_eq!(c.counters().gmem_read_bytes, 400.0);
        assert_eq!(c.counters().gmem_txn_bytes, 3200.0);
    }

    #[test]
    fn launch_config_builders() {
        let cfg = LaunchConfig::new("k", 10, 256)
            .with_shared_mem(4096)
            .with_regs(24);
        assert_eq!(cfg.grid_blocks, 10);
        assert_eq!(cfg.block_threads, 256);
        assert_eq!(cfg.shared_mem_bytes, 4096);
        assert_eq!(cfg.regs_per_thread, 24);
    }
}
