//! Analytic CPU timing model for the Figure 8 baseline: a Core-i5-class
//! dual-core at 3.4 GHz running a sequential LU (`gtsv`) tridiagonal solver,
//! parallelised over systems with one thread per core (the paper's OpenMP
//! setup; a single thread for a single system, since the solver is
//! sequential).
//!
//! Like the GPU model, this produces *simulated* seconds so both sides of
//! the CPU-vs-GPU comparison live in the same time domain. The
//! per-equation constant is calibrated once against the paper's measured MKL
//! times (see EXPERIMENTS.md); the *model structure* (linear in equations,
//! near-linear thread scaling degraded by memory contention) is what carries
//! the comparison's shape.

use serde::{Deserialize, Serialize};

/// CPU description + calibrated solver cost constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Marketing name.
    pub name: String,
    /// Physical cores available.
    pub cores: usize,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// Calibrated single-thread cost of one LU-solved equation, in
    /// nanoseconds (covers the division-latency-bound dependency chain of
    /// `gtsv` plus its memory traffic).
    pub ns_per_eq_lu: f64,
    /// Per-core slowdown factor when `t` threads run concurrently
    /// (`contention[0] = 1.0` for one thread); models shared cache/memory
    /// bandwidth. Indexed by `min(threads, len) - 1`.
    pub contention: Vec<f64>,
    /// One-time cost of spinning up the thread team, in microseconds.
    pub thread_spawn_us: f64,
}

impl CpuSpec {
    /// The paper's CPU: "3.4 GHz Intel Core i5 dual-core" running MKL
    /// 10.2.5.035. Constants calibrated against Figure 8 (see
    /// EXPERIMENTS.md for the calibration record).
    pub fn core_i5_dual_3_4ghz() -> Self {
        Self {
            name: "Intel Core i5 dual-core 3.4 GHz (MKL gtsv model)".into(),
            cores: 2,
            clock_ghz: 3.4,
            ns_per_eq_lu: 16.2,
            contention: vec![1.0, 1.26],
            thread_spawn_us: 30.0,
        }
    }

    /// Per-core slowdown with `threads` active.
    pub fn contention_factor(&self, threads: usize) -> f64 {
        assert!(threads >= 1);
        let idx = threads.min(self.contention.len()) - 1;
        self.contention[idx]
    }

    /// Simulated seconds to solve `m` systems of `n` equations with
    /// `threads` threads, each system solved sequentially by LU.
    pub fn time_batch_lu(&self, m: usize, n: usize, threads: usize) -> f64 {
        assert!(threads >= 1, "need at least one thread");
        let threads = threads.min(self.cores).min(m.max(1));
        let per_eq_s = self.ns_per_eq_lu * 1e-9 * self.contention_factor(threads);
        let systems_per_thread = m.div_ceil(threads);
        let spawn = if threads > 1 {
            self.thread_spawn_us * 1e-6
        } else {
            0.0
        };
        systems_per_thread as f64 * n as f64 * per_eq_s + spawn
    }

    /// The paper's driver policy: as many threads as cores when there are
    /// multiple systems, a single thread for a single system. Returns
    /// `(seconds, threads_used)`.
    pub fn time_batch_lu_auto(&self, m: usize, n: usize) -> (f64, usize) {
        let threads = if m >= 2 { self.cores } else { 1 };
        (self.time_batch_lu(m, n, threads), threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Figure 8 CPU milliseconds for the four workloads.
    const PAPER: [(usize, usize, f64); 4] = [
        (1024, 1024, 10.70),
        (2048, 2048, 37.9),
        (4096, 4096, 168.3),
        (1, 2 * 1024 * 1024, 34.0),
    ];

    #[test]
    fn calibration_matches_figure8_within_20_percent() {
        let cpu = CpuSpec::core_i5_dual_3_4ghz();
        for (m, n, paper_ms) in PAPER {
            let (t, _) = cpu.time_batch_lu_auto(m, n);
            let ms = t * 1e3;
            let ratio = ms / paper_ms;
            assert!(
                (0.8..1.25).contains(&ratio),
                "{m}x{n}: model {ms:.2} ms vs paper {paper_ms} ms (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn single_system_uses_one_thread() {
        let cpu = CpuSpec::core_i5_dual_3_4ghz();
        let (_, threads) = cpu.time_batch_lu_auto(1, 1000);
        assert_eq!(threads, 1);
        let (_, threads) = cpu.time_batch_lu_auto(100, 1000);
        assert_eq!(threads, 2);
    }

    #[test]
    fn two_threads_faster_than_one_but_sublinear() {
        let cpu = CpuSpec::core_i5_dual_3_4ghz();
        let t1 = cpu.time_batch_lu(1024, 1024, 1);
        let t2 = cpu.time_batch_lu(1024, 1024, 2);
        assert!(t2 < t1);
        let speedup = t1 / t2;
        assert!(speedup > 1.3 && speedup < 2.0, "speedup {speedup:.2}");
    }

    #[test]
    fn threads_clamped_to_cores_and_systems() {
        let cpu = CpuSpec::core_i5_dual_3_4ghz();
        // 16 threads requested on 2 cores: same as 2.
        assert_eq!(
            cpu.time_batch_lu(100, 100, 16),
            cpu.time_batch_lu(100, 100, 2)
        );
        // 2 threads on 1 system: same as 1 thread (no spawn either).
        assert_eq!(cpu.time_batch_lu(1, 100, 2), cpu.time_batch_lu(1, 100, 1));
    }

    #[test]
    fn time_is_linear_in_equations() {
        let cpu = CpuSpec::core_i5_dual_3_4ghz();
        let t1 = cpu.time_batch_lu(1, 1000, 1);
        let t2 = cpu.time_batch_lu(1, 2000, 1);
        assert!((t2 / t1 - 2.0).abs() < 0.01);
    }
}
