//! Property and fixture tests for the dynamic sanitizer: each class of
//! injected hazard (out-of-bounds, uninitialized read, inter-barrier race)
//! must be detected with the right kind and location, hazard-free kernels
//! must come back clean, and enabling the sanitizer must never change a
//! simulated timing.

use proptest::prelude::*;
use trisolve_gpu_sim::{
    DeviceSpec, Gpu, HazardKind, KernelStats, LaunchConfig, OutMode, Region, SanitizerReport,
};

/// A 1-block launch config with optional shared memory (in f32 elements).
fn cfg(label: &str, threads: usize, smem_elems: usize) -> LaunchConfig {
    LaunchConfig::new(label, 1, threads).with_shared_mem(smem_elems * 4)
}

/// Run one single-block kernel on a sanitizing device and return the report.
fn run_sanitized<F>(label: &str, smem_elems: usize, kernel: F) -> SanitizerReport
where
    F: Fn(&mut trisolve_gpu_sim::BlockCtx, &mut trisolve_gpu_sim::BlockIo<'_, f32>) + Sync,
{
    let mut gpu: Gpu<f32> = Gpu::with_sanitizer(DeviceSpec::gtx_470());
    let input = gpu.alloc_from(&[1.0; 64]).unwrap();
    let out = gpu.alloc(64).unwrap();
    gpu.launch(
        &cfg(label, 32, smem_elems),
        &[input],
        &[(out, OutMode::Scattered)],
        kernel,
    )
    .unwrap();
    gpu.take_sanitizer_report().unwrap()
}

#[test]
fn injected_oob_load_detected_with_location() {
    let report = run_sanitized("oob-fixture[load]", 0, |_ctx, io| {
        // Input has 64 elements; index 100 is past the end.
        let v = io.load(0, 100, 7, "fixture::oob_load");
        assert_eq!(v, 0.0, "OOB load must return the default, not panic");
        io.scattered[0].set_at(0, v, 7, "fixture::store");
    });
    assert_eq!(report.hazards.len(), 1, "{report}");
    let h = &report.hazards[0];
    assert_eq!(h.kind, HazardKind::OutOfBounds);
    assert_eq!(h.region, Region::Input(0));
    assert_eq!(h.index, 100);
    assert_eq!(h.kernel, "oob-fixture[load]");
    assert_eq!(h.second.tid, 7);
    assert_eq!(h.second.site, "fixture::oob_load");
}

#[test]
fn injected_oob_scattered_store_detected_and_dropped() {
    let mut gpu: Gpu<f32> = Gpu::with_sanitizer(DeviceSpec::gtx_470());
    let input = gpu.alloc_from(&[1.0; 8]).unwrap();
    let out = gpu.alloc(8).unwrap();
    gpu.launch(
        &cfg("oob-fixture[store]", 8, 0),
        &[input],
        &[(out, OutMode::Scattered)],
        |_ctx, io| {
            // In bounds, then past the end: the bad write must be dropped
            // (recorded, not a panic) and the good one must land.
            io.scattered[0].set_at(3, 42.0, 3, "fixture::good_store");
            io.scattered[0].set_at(9, 1.0, 4, "fixture::oob_store");
        },
    )
    .unwrap();
    let report = gpu.take_sanitizer_report().unwrap();
    assert_eq!(report.hazards.len(), 1, "{report}");
    let h = &report.hazards[0];
    assert_eq!(h.kind, HazardKind::OutOfBounds);
    assert_eq!(h.region, Region::ScatteredOut(0));
    assert_eq!(h.index, 9);
    assert!(h.second.write);
    assert_eq!(gpu.download(out).unwrap()[3], 42.0);
}

#[test]
fn injected_uninit_global_read_detected() {
    let mut gpu: Gpu<f32> = Gpu::with_sanitizer(DeviceSpec::gtx_470());
    // `alloc` is a fresh cudaMalloc: zeroed in the simulator but *logically*
    // uninitialised until an upload or a kernel writes it.
    let never_written = gpu.alloc(16).unwrap();
    let out = gpu.alloc(16).unwrap();
    gpu.launch(
        &cfg("uninit-fixture[global]", 16, 0),
        &[never_written],
        &[(out, OutMode::Scattered)],
        |_ctx, io| {
            let v = io.load(0, 5, 5, "fixture::uninit_load");
            io.scattered[0].set_at(5, v, 5, "fixture::store");
        },
    )
    .unwrap();
    let report = gpu.take_sanitizer_report().unwrap();
    let uninit: Vec<_> = report
        .hazards
        .iter()
        .filter(|h| h.kind == HazardKind::UninitializedRead)
        .collect();
    assert_eq!(uninit.len(), 1, "{report}");
    assert_eq!(uninit[0].region, Region::Input(0));
    assert_eq!(uninit[0].index, 5);
    assert_eq!(uninit[0].second.site, "fixture::uninit_load");
}

#[test]
fn injected_uninit_smem_read_detected() {
    let report = run_sanitized("uninit-fixture[smem]", 8, |ctx, io| {
        // Element 2 is stored then read (fine); element 3 is read bare.
        ctx.track_smem_write(2, 0, "fixture::smem_store");
        ctx.sync();
        ctx.track_smem_read(2, 1, "fixture::smem_ok");
        ctx.track_smem_read(3, 1, "fixture::smem_uninit");
        io.scattered[0].set_at(0, 0.0, 0, "fixture::store");
    });
    let uninit: Vec<_> = report
        .hazards
        .iter()
        .filter(|h| h.kind == HazardKind::UninitializedRead)
        .collect();
    assert_eq!(uninit.len(), 1, "{report}");
    assert_eq!(uninit[0].region, Region::Shared);
    assert_eq!(uninit[0].index, 3);
}

#[test]
fn injected_interbarrier_race_detected_and_sync_cures_it() {
    // Two threads store the same shared element in one barrier interval:
    // write-write race, reported with both sites.
    let racy = run_sanitized("race-fixture[ww]", 8, |ctx, io| {
        ctx.track_smem_write(4, 0, "fixture::first_store");
        ctx.track_smem_write(4, 1, "fixture::second_store");
        io.scattered[0].set_at(0, 0.0, 0, "fixture::store");
    });
    let races: Vec<_> = racy
        .hazards
        .iter()
        .filter(|h| h.kind == HazardKind::RaceWriteWrite)
        .collect();
    assert_eq!(races.len(), 1, "{racy}");
    assert_eq!(races[0].region, Region::Shared);
    assert_eq!(races[0].index, 4);
    assert_eq!(races[0].first.unwrap().site, "fixture::first_store");
    assert_eq!(races[0].second.site, "fixture::second_store");

    // The same accesses separated by a barrier: happens-before, no race.
    let cured = run_sanitized("race-fixture[sync]", 8, |ctx, io| {
        ctx.track_smem_write(4, 0, "fixture::first_store");
        ctx.sync();
        ctx.track_smem_write(4, 1, "fixture::second_store");
        io.scattered[0].set_at(0, 0.0, 0, "fixture::store");
    });
    assert!(cured.is_clean(), "{cured}");
}

#[test]
fn injected_read_write_race_detected() {
    let report = run_sanitized("race-fixture[rw]", 8, |ctx, io| {
        ctx.track_smem_write(1, 0, "fixture::seed");
        ctx.sync();
        // Thread 0 reads element 1 while thread 1 overwrites it.
        ctx.track_smem_read(1, 0, "fixture::read");
        ctx.track_smem_write(1, 1, "fixture::write");
        io.scattered[0].set_at(0, 0.0, 0, "fixture::store");
    });
    let races: Vec<_> = report
        .hazards
        .iter()
        .filter(|h| h.kind == HazardKind::RaceReadWrite)
        .collect();
    assert_eq!(races.len(), 1, "{report}");
    assert_eq!(races[0].index, 1);
}

#[test]
fn hazard_free_kernel_reports_clean() {
    let report = run_sanitized("clean-fixture", 32, |ctx, io| {
        let mut staged = [0.0f32; 32];
        for (j, s) in staged.iter_mut().enumerate() {
            *s = io.load(0, j, j, "fixture::load");
            ctx.track_smem_write(j, j, "fixture::stage");
        }
        ctx.sync();
        for (j, s) in staged.iter().enumerate() {
            ctx.track_smem_read(j, j, "fixture::consume");
            io.scattered[0].set_at(j, *s, j, "fixture::store");
        }
    });
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.launches_checked, 1);
}

#[test]
fn report_accumulates_across_launches_and_take_resets() {
    let mut gpu: Gpu<f32> = Gpu::with_sanitizer(DeviceSpec::gtx_470());
    let input = gpu.alloc_from(&[0.0; 8]).unwrap();
    let out = gpu.alloc(8).unwrap();
    for _ in 0..3 {
        gpu.launch(
            &cfg("accumulate", 8, 0),
            &[input],
            &[(out, OutMode::Scattered)],
            |_ctx, io| {
                let _ = io.load(0, 99, 0, "fixture::oob");
            },
        )
        .unwrap();
    }
    let report = gpu.take_sanitizer_report().unwrap();
    assert_eq!(report.launches_checked, 3);
    assert_eq!(report.hazards.len(), 3);
    // take() resets the report but the device keeps sanitizing.
    assert!(gpu.sanitizing());
    let fresh = gpu.sanitizer_report().unwrap();
    assert!(fresh.is_clean());
    assert_eq!(fresh.launches_checked, 0);
}

/// The same kernel run with and without the sanitizer: identical outputs and
/// a bit-identical simulated timeline. The shadow state must never leak into
/// the cost meters.
#[test]
fn sanitizer_never_perturbs_timing_or_results() {
    fn run(sanitize: bool) -> (Vec<f32>, Vec<KernelStats>, f64) {
        let spec = DeviceSpec::gtx_280();
        let mut gpu: Gpu<f32> = if sanitize {
            Gpu::with_sanitizer(spec)
        } else {
            Gpu::new(spec)
        };
        let data: Vec<f32> = (0..256).map(|i| i as f32).collect();
        let input = gpu.alloc_from(&data).unwrap();
        let out = gpu.alloc(256).unwrap();
        gpu.launch(
            &LaunchConfig::new("identity[tracked]", 8, 32).with_shared_mem(32 * 4),
            &[input],
            &[(out, OutMode::Scattered)],
            |ctx, io| {
                let base = ctx.block_id as usize * 32;
                ctx.gmem_read(32, 1);
                for j in 0..32 {
                    let v = io.load(0, base + j, j, "identity::load");
                    ctx.track_smem_write(j, j, "identity::stage");
                    ctx.sync();
                    ctx.track_smem_read(j, j, "identity::consume");
                    io.scattered[0].set_at(base + j, v * 2.0, j, "identity::store");
                }
                ctx.ops(64);
                ctx.gmem_write(32, 1);
            },
        )
        .unwrap();
        let x = gpu.download(out).unwrap();
        (x, gpu.timeline().to_vec(), gpu.elapsed_s())
    }

    let (x_off, timeline_off, t_off) = run(false);
    let (x_on, timeline_on, t_on) = run(true);
    assert_eq!(x_off, x_on);
    assert_eq!(
        t_off.to_bits(),
        t_on.to_bits(),
        "clock must be bit-identical"
    );
    assert_eq!(timeline_off.len(), timeline_on.len());
    for (a, b) in timeline_off.iter().zip(&timeline_on) {
        assert_eq!(a.total_time_s().to_bits(), b.total_time_s().to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// memcheck is exact: a tracked load trips iff the index is past the
    /// end, and never panics either way.
    #[test]
    fn oob_hazard_iff_index_past_end(len in 1usize..64, idx in 0usize..128) {
        let mut gpu: Gpu<f32> = Gpu::with_sanitizer(DeviceSpec::gtx_470());
        let input = gpu.alloc_from(&vec![1.0f32; len]).unwrap();
        let out = gpu.alloc(len).unwrap();
        gpu.launch(
            &cfg("prop[oob]", 1, 0),
            &[input],
            &[(out, OutMode::Scattered)],
            |_ctx, io| {
                let _ = io.load(0, idx, 0, "prop::load");
            },
        ).unwrap();
        let report = gpu.take_sanitizer_report().unwrap();
        let oob = report.hazards.iter().filter(|h| h.kind == HazardKind::OutOfBounds).count();
        prop_assert!(oob == usize::from(idx >= len), "len {len} idx {idx}: {report}");
    }

    /// racecheck is exact on a two-access pattern: a hazard iff the threads
    /// differ, at least one access writes, and no barrier separates them.
    #[test]
    fn race_iff_conflicting_threads_share_an_interval(
        tid_a in 0usize..4,
        tid_b in 0usize..4,
        a_writes in any::<bool>(),
        b_writes in any::<bool>(),
        barrier_between in any::<bool>(),
    ) {
        let report = run_sanitized("prop[race]", 8, |ctx, io| {
            // Seed the element so plain reads don't trip initcheck.
            ctx.track_smem_write(0, tid_a, "prop::seed");
            ctx.sync();
            ctx.track_smem_access(0, tid_a, "prop::a", a_writes);
            if barrier_between {
                ctx.sync();
            }
            ctx.track_smem_access(0, tid_b, "prop::b", b_writes);
            io.scattered[0].set_at(0, 0.0, 0, "prop::store");
        });
        let races = report
            .hazards
            .iter()
            .filter(|h| matches!(h.kind, HazardKind::RaceWriteWrite | HazardKind::RaceReadWrite))
            .count();
        let expect = tid_a != tid_b && (a_writes || b_writes) && !barrier_between;
        prop_assert!(races == usize::from(expect), "{report}");
    }
}

/// Convenience used by the property test above: read-or-write in one call.
trait TrackAccess {
    fn track_smem_access(&mut self, idx: usize, tid: usize, site: &'static str, write: bool);
}

impl TrackAccess for trisolve_gpu_sim::BlockCtx<'_> {
    fn track_smem_access(&mut self, idx: usize, tid: usize, site: &'static str, write: bool) {
        if write {
            self.track_smem_write(idx, tid, site);
        } else {
            self.track_smem_read(idx, tid, site);
        }
    }
}
