//! Property tests over the simulator itself: residency arithmetic, timing
//! monotonicity, launch-validation totality and buffer accounting.

use proptest::prelude::*;
use trisolve_gpu_sim::{timing, CostCounters, DeviceSpec, Gpu, LaunchConfig, OutMode, SimError};

fn devices() -> Vec<DeviceSpec> {
    DeviceSpec::paper_devices()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn residency_never_exceeds_device_limits(
        dev_idx in 0usize..3,
        grid in 1usize..10_000,
        threads in 1usize..1024,
        shmem in 0usize..64 * 1024,
        regs in 0usize..64,
    ) {
        let dev = &devices()[dev_idx];
        let cfg = LaunchConfig::new("p", grid, threads)
            .with_shared_mem(shmem)
            .with_regs(regs);
        match timing::residency(dev, &cfg) {
            Ok(r) => {
                let q = dev.queryable();
                prop_assert!(r.blocks_per_sm >= 1);
                prop_assert!(r.blocks_per_sm <= q.max_blocks_per_sm);
                prop_assert!(r.blocks_per_sm * threads <= q.max_threads_per_sm);
                if shmem > 0 {
                    prop_assert!(r.blocks_per_sm * shmem <= q.shared_mem_per_sm_bytes);
                }
                if regs > 0 {
                    prop_assert!(r.blocks_per_sm * regs * threads <= q.registers_per_sm);
                }
            }
            Err(SimError::LaunchTooLarge { .. }) | Err(SimError::InvalidLaunch { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    #[test]
    fn kernel_time_is_monotone_in_every_counter(
        dev_idx in 0usize..3,
        base_ops in 0.0f64..1e6,
        extra in 1.0f64..1e6,
        field in 0usize..5,
    ) {
        let dev = &devices()[dev_idx];
        let cfg = LaunchConfig::new("m", 64, 128).with_regs(16);
        let mk = |boost: f64| {
            let mut c = CostCounters {
                thread_ops: base_ops,
                smem_accesses: base_ops / 2.0,
                gmem_read_bytes: base_ops,
                gmem_txn_bytes: base_ops,
                gmem_warp_txns: base_ops / 32.0,
                barriers: 4.0,
                ..Default::default()
            };
            match field {
                0 => c.thread_ops += boost,
                1 => c.smem_accesses += boost,
                2 => c.gmem_txn_bytes += boost,
                3 => c.gmem_warp_txns += boost,
                _ => c.barriers += boost,
            }
            c
        };
        let t0 = timing::kernel_time(dev, &cfg, &vec![mk(0.0); 64]).unwrap();
        let t1 = timing::kernel_time(dev, &cfg, &vec![mk(extra); 64]).unwrap();
        prop_assert!(
            t1.exec_time_s >= t0.exec_time_s,
            "field {field}: {:.3e} < {:.3e}",
            t1.exec_time_s,
            t0.exec_time_s
        );
    }

    #[test]
    fn more_blocks_of_same_work_never_faster(
        dev_idx in 0usize..3,
        grid in 1usize..256,
    ) {
        let dev = &devices()[dev_idx];
        let cfg = |g: usize| LaunchConfig::new("g", g, 128).with_regs(16);
        let per_block = CostCounters {
            thread_ops: 10_000.0,
            gmem_txn_bytes: 10_000.0,
            ..Default::default()
        };
        let t_small = timing::kernel_time(dev, &cfg(grid), &vec![per_block; grid]).unwrap();
        let t_big =
            timing::kernel_time(dev, &cfg(grid * 2), &vec![per_block; grid * 2]).unwrap();
        prop_assert!(t_big.exec_time_s >= t_small.exec_time_s * 0.999);
    }

    #[test]
    fn alloc_free_accounting_balances(sizes in prop::collection::vec(1usize..10_000, 1..20)) {
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
        let ids: Vec<_> = sizes.iter().map(|&s| gpu.alloc(s).unwrap()).collect();
        let expected: usize = sizes.iter().map(|s| s * 4).sum();
        prop_assert_eq!(gpu.allocated_bytes(), expected);
        for id in ids {
            gpu.free(id).unwrap();
        }
        prop_assert_eq!(gpu.allocated_bytes(), 0);
    }

    #[test]
    fn chunked_copy_kernel_is_deterministic(
        n_log2 in 4u32..12,
        threads in 1usize..256,
    ) {
        let n = 1usize << n_log2;
        let chunk = (n / 4).max(1);
        let grid = n / chunk;
        let run = || {
            let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_280());
            let src = gpu
                .alloc_from(&(0..n).map(|i| i as f32).collect::<Vec<_>>())
                .unwrap();
            let dst = gpu.alloc(n).unwrap();
            let cfg = LaunchConfig::new("copy", grid, threads.min(512)).with_regs(8);
            gpu.launch(&cfg, &[src], &[(dst, OutMode::Chunked { chunk })], |ctx, io| {
                let b = ctx.block_id as usize;
                let len = io.owned[0].len();
                io.owned[0].copy_from_slice(&io.inputs[0][b * chunk..b * chunk + len]);
                ctx.gmem_read(len, 1);
                ctx.gmem_write(len, 1);
            })
            .unwrap();
            (gpu.download(dst).unwrap(), gpu.elapsed_s())
        };
        let (d1, t1) = run();
        let (d2, t2) = run();
        prop_assert_eq!(d1.clone(), d2);
        prop_assert_eq!(t1, t2);
        for (i, v) in d1.iter().enumerate() {
            prop_assert_eq!(*v, i as f32);
        }
    }
}
