//! Auto-tuning walkthrough: watch the three parameter-selection strategies
//! (default / machine-query / self-tuned) pick switch points on each of the
//! paper's three GPUs, and see what each choice costs.
//!
//! Run with: `cargo run --release --example autotune_demo`

use trisolve::gpu::DeviceSpec;
use trisolve::prelude::*;
use trisolve::solver::solver::measure_solve_time;

fn main() {
    // A workload with real tension between the switch points: a few big
    // systems (stage 1 engages) on some devices, plenty of splitting on all.
    let shape = WorkloadShape::new(8, 1 << 15);
    let batch = random_dominant::<f32>(shape, 7).expect("valid workload");
    println!("workload: {}\n", shape.label());

    for device in DeviceSpec::paper_devices() {
        let q = device.queryable().clone();
        println!("--- {} ---", q.name);

        // Default: one size fits all.
        let p_def = DefaultTuner.params_for(shape, &q, 4);

        // Static: reads Table II and guesses.
        let p_sta = StaticTuner.params_for(shape, &q, 4);

        // Dynamic: measures. (Tuning cost is separate from solve cost and
        // cached for future runs — print both.)
        let mut dynamic = DynamicTuner::new();
        let config = {
            let mut gpu: Gpu<f32> = Gpu::new(device.clone());
            dynamic.tune_for(&mut gpu, shape)
        };
        let p_dyn = dynamic.params_for(shape, &q, 4);

        for (name, p) in [("default", p_def), ("static", p_sta), ("dynamic", p_dyn)] {
            let mut gpu: Gpu<f32> = Gpu::new(device.clone());
            let ms = measure_solve_time(&mut gpu, &batch, &p).map_or(f64::INFINITY, |t| t * 1e3);
            println!(
                "  {name:<8} S3={:<5} T4={:<4} P1={:<4} {:<10} -> {ms:8.3} ms",
                p.onchip_size,
                p.thomas_switch,
                p.stage1_target_systems,
                format!("{:?}", p.variant),
            );
        }
        println!(
            "  (dynamic tuning spent {} micro-benchmarks; result cacheable)\n",
            config.evaluations
        );
    }

    // Persist the tuned configurations the way a long-running application
    // would ("save those results for future runs", §IV-D).
    let mut cache = TuningCache::new();
    for device in DeviceSpec::paper_devices() {
        let mut gpu: Gpu<f32> = Gpu::new(device.clone());
        let mut dynamic = DynamicTuner::new();
        let config = dynamic.tune_for(&mut gpu, shape);
        cache.insert(device.name(), config);
    }
    let path = std::env::temp_dir().join("trisolve-tuning-cache.json");
    cache.save(&path).expect("cache is writable");
    println!(
        "saved {} tuned configurations to {}",
        cache.len(),
        path.display()
    );
    let reloaded = TuningCache::load(&path).expect("cache reloads");
    assert_eq!(reloaded.len(), cache.len());
    let restored = DynamicTuner::from_config(
        reloaded
            .get("GeForce GTX 470", 4)
            .expect("470 config cached")
            .clone(),
    );
    println!(
        "reloaded 470 config: on-chip size {}",
        restored.config().unwrap().onchip_size
    );
}
