//! Euler–Bernoulli beam bending — a pentadiagonal application for the
//! banded-solver extension (the paper's §VII future work, implemented in
//! `trisolve::tridiag::banded`).
//!
//! The static deflection `w(x)` of a clamped-clamped beam under a load
//! `q(x)` satisfies the fourth-order equation `EI·w'''' = q`. Central
//! differences turn `w''''` into the five-point stencil `[1, −4, 6, −4, 1]`,
//! i.e. a pentadiagonal system.
//!
//! Run with: `cargo run --release --example beam_bending`

use trisolve::tridiag::banded::{solve_banded, BandedMatrix};

/// Interior grid points.
const N: usize = 400;
/// Beam length (m), flexural rigidity EI (N·m²), uniform load (N/m).
const LENGTH: f64 = 2.0;
const EI: f64 = 150.0;
const Q: f64 = 1_000.0;

fn main() {
    let h = LENGTH / (N as f64 + 1.0);
    let h4 = h.powi(4);

    // Assemble EI/h⁴ · [1, -4, 6, -4, 1] with clamped boundaries
    // (w = w' = 0 at both ends, imposed via the ghost-point reflection that
    // modifies the first and last diagonal entries to 7).
    let mut m = BandedMatrix::zeros(N, 2, 2).expect("valid banded shape");
    for i in 0..N {
        let diag = if i == 0 || i == N - 1 { 7.0 } else { 6.0 };
        m.set(i, i, EI * diag / h4).unwrap();
        if i >= 1 {
            m.set(i, i - 1, EI * -4.0 / h4).unwrap();
        }
        if i + 1 < N {
            m.set(i, i + 1, EI * -4.0 / h4).unwrap();
        }
        if i >= 2 {
            m.set(i, i - 2, EI * 1.0 / h4).unwrap();
        }
        if i + 2 < N {
            m.set(i, i + 2, EI * 1.0 / h4).unwrap();
        }
    }
    let q = vec![Q; N];
    let w = solve_banded(&m, &q).expect("beam solve");

    // Analytic midspan deflection of a clamped-clamped beam under uniform
    // load: w_max = q·L⁴ / (384·EI).
    let analytic = Q * LENGTH.powi(4) / (384.0 * EI);
    let mid = w[N / 2];
    println!("midspan deflection: numeric {mid:.6} m, analytic {analytic:.6} m");
    let rel_err = ((mid - analytic) / analytic).abs();
    println!("relative error: {rel_err:.3e} (second-order scheme on {N} points)");
    assert!(rel_err < 5e-3, "discretisation error out of band");

    // Symmetry and boundary checks.
    let asym = w
        .iter()
        .zip(w.iter().rev())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max asymmetry: {asym:.3e}");
    assert!(
        asym < 1e-9,
        "uniform load on a symmetric beam must deflect symmetrically"
    );
    assert!(w[0] < mid && w[N - 1] < mid, "clamped ends deflect least");

    // Print a coarse deflection profile.
    println!("\ndeflection profile (x, w):");
    for k in 0..=10 {
        let i = (k * (N - 1)) / 10;
        let x = (i as f64 + 1.0) * h;
        let bar = "#".repeat((w[i] / analytic * 40.0) as usize);
        println!("  x={x:4.2} m  w={:8.6} m  {bar}", w[i]);
    }
}
