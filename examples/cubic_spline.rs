//! Cubic spline interpolation — one of the classic tridiagonal applications
//! from the paper's introduction.
//!
//! Fits natural cubic splines through many sampled curves at once: the
//! second-derivative system of each curve is tridiagonal (`[1, 4, 1]`), and
//! fitting a batch of curves is a many-small-systems workload for the
//! multi-stage solver.
//!
//! Run with: `cargo run --release --example cubic_spline`

use trisolve::prelude::*;

/// Number of curves fitted at once.
const CURVES: usize = 512;
/// Interior knots per curve.
const KNOTS: usize = 254;

fn main() {
    // Sample a family of noisy sine curves at uniform knots.
    let n = KNOTS;
    let total = CURVES * n;
    let mut a = vec![1.0f64; total];
    let b = vec![4.0f64; total];
    let mut c = vec![1.0f64; total];
    let mut d = vec![0.0f64; total];
    let mut samples = vec![0.0f64; CURVES * (n + 2)];
    for curve in 0..CURVES {
        let phase = curve as f64 * 0.01;
        let freq = 1.0 + (curve % 7) as f64 * 0.5;
        for k in 0..n + 2 {
            let t = k as f64 / (n + 1) as f64;
            samples[curve * (n + 2) + k] = (freq * std::f64::consts::TAU * t + phase).sin();
        }
        a[curve * n] = 0.0;
        c[curve * n + n - 1] = 0.0;
        for i in 0..n {
            let y = &samples[curve * (n + 2)..];
            d[curve * n + i] = 6.0 * (y[i] - 2.0 * y[i + 1] + y[i + 2]);
        }
    }
    let batch = SystemBatch::new(CURVES, n, a, b, c, d).expect("valid spline batch");

    // Solve all second-derivative systems on the simulated GPU. Doubles
    // here: spline coefficients benefit from the extra precision, and this
    // exercises the f64 path (shared-memory bank conflicts and all).
    let shape = WorkloadShape::new(CURVES, n);
    let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_280());
    let mut tuner = DynamicTuner::new();
    tuner.tune_for(&mut gpu, shape);
    let params = tuner.params_for(shape, gpu.spec().queryable(), 8);
    let outcome = solve_batch_on_gpu(&mut gpu, &batch, &params).expect("spline solve");
    println!(
        "fitted {CURVES} splines ({KNOTS} knots each) in {:.3} simulated ms on {}",
        outcome.sim_time_ms(),
        gpu.spec().name()
    );

    let residual = batch_worst_relative_residual(&batch, &outcome.x).expect("residual");
    println!("worst relative residual: {residual:.2e}");
    assert!(residual < 1e-12);

    // Evaluate spline 0 halfway between two knots and compare with the
    // true curve: the interpolation error of a cubic spline on a smooth
    // function at this resolution should be tiny.
    let curve = 0usize;
    let m = &outcome.x[curve * n..(curve + 1) * n]; // second derivatives
    let y = &samples[curve * (n + 2)..curve * (n + 2) + n + 2];
    let h = 1.0 / (n + 1) as f64;
    // Interval between knots k and k+1 (both interior), t = 0.5. The RHS
    // was assembled without the 1/h² factor, so `m` carries h² already.
    let k = n / 3;
    let (m0, m1) = (m[k - 1], m[k]);
    let (y0, y1) = (y[k], y[k + 1]);
    let t = 0.5f64;
    let s = m0 * (1.0 - t).powi(3) / 6.0
        + m1 * t.powi(3) / 6.0
        + (y0 - m0 / 6.0) * (1.0 - t)
        + (y1 - m1 / 6.0) * t;
    let x_mid = (k as f64 + 0.5) * h;
    let truth = (std::f64::consts::TAU * x_mid).sin();
    println!("spline(0.5 between knots) = {s:.6}, truth = {truth:.6}");
    assert!(
        (s - truth).abs() < 1e-4,
        "spline must interpolate accurately"
    );
    println!("interpolation error: {:.2e}", (s - truth).abs());
}
