//! ADI heat equation: the paper's headline motivating application.
//!
//! Solves the 2-D heat equation `u_t = α (u_xx + u_yy)` on a square grid
//! with the alternating direction implicit (ADI) method: each time step is
//! two half-steps, each of which solves one tridiagonal system **per grid
//! line** — hundreds of independent systems per step, exactly the workload
//! class ("thousands of tridiagonal systems in parallel", Sakharnykh) the
//! multi-stage solver targets.
//!
//! Run with: `cargo run --release --example adi_heat`

use trisolve::prelude::*;
use trisolve::tridiag::thomas;

/// Grid resolution (NX columns × NY rows).
const NX: usize = 256;
const NY: usize = 256;
/// Diffusion number `α·Δt/Δx²` of each implicit half-step.
const R: f64 = 0.4;
/// Time steps to simulate.
const STEPS: usize = 8;

fn main() {
    // Initial condition: a hot square in the centre of a cold plate.
    let mut u = vec![0.0f32; NX * NY];
    for y in NY / 3..2 * NY / 3 {
        for x in NX / 3..2 * NX / 3 {
            u[y * NX + x] = 100.0;
        }
    }

    let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
    let shape_rows = WorkloadShape::new(NY, NX);
    let mut tuner = DynamicTuner::new();
    tuner.tune_for(&mut gpu, shape_rows);
    let params = tuner.params_for(shape_rows, gpu.spec().queryable(), 4);

    let mut total_ms = 0.0;
    for step in 0..STEPS {
        // --- x-sweep: one implicit system per row -----------------------
        let batch = implicit_line_systems(&u, NX, NY, true);
        let out = solve_batch_on_gpu(&mut gpu, &batch, &params).expect("x-sweep");
        scatter_rows(&mut u, &out.x, true);
        total_ms += out.sim_time_ms();

        // --- y-sweep: one implicit system per column --------------------
        let batch = implicit_line_systems(&u, NX, NY, false);
        let out = solve_batch_on_gpu(&mut gpu, &batch, &params).expect("y-sweep");
        scatter_rows(&mut u, &out.x, false);
        total_ms += out.sim_time_ms();

        let centre = u[(NY / 2) * NX + NX / 2];
        let edge = u[(NY / 2) * NX + 2];
        println!(
            "step {:>2}: centre {:7.3}  edge {:7.3}  (cumulative {:8.3} simulated ms)",
            step + 1,
            centre,
            edge,
            total_ms
        );
    }

    // Sanity: heat spreads — centre cools, edges warm, energy roughly
    // conserved (Dirichlet boundaries leak a little).
    let total: f64 = u.iter().map(|&v| v as f64).sum();
    println!("final total heat: {total:.1} (initial {:.1})", {
        (NY / 3..2 * NY / 3).len() as f64 * (NX / 3..2 * NX / 3).len() as f64 * 100.0
    });
    assert!(u[(NY / 2) * NX + NX / 2] < 100.0, "centre must cool");
    assert!(u[(NY / 6) * NX + NX / 6] > 0.0, "corners must warm");

    // Cross-check the last sweep against the CPU Thomas solver.
    let batch = implicit_line_systems(&u, NX, NY, true);
    let gpu_out = solve_batch_on_gpu(&mut gpu, &batch, &params).expect("check sweep");
    let sys0 = batch.system(0).expect("first line");
    let cpu_x = thomas::solve_thomas(&sys0).expect("CPU check");
    let worst = cpu_x
        .iter()
        .zip(&gpu_out.x[..NX])
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("GPU vs CPU on line 0: max |diff| = {worst:.2e}");
    assert!(worst < 1e-2);
}

/// Build the implicit half-step systems `(I − R·δ²)u' = u` along rows
/// (`along_x`) or columns.
fn implicit_line_systems(u: &[f32], nx: usize, ny: usize, along_x: bool) -> SystemBatch<f32> {
    let (lines, len) = if along_x { (ny, nx) } else { (nx, ny) };
    let total = lines * len;
    let r = R as f32;
    let mut a = vec![-r; total];
    let b = vec![1.0 + 2.0 * r; total];
    let mut c = vec![-r; total];
    let mut d = vec![0.0f32; total];
    for line in 0..lines {
        a[line * len] = 0.0;
        c[line * len + len - 1] = 0.0;
        for i in 0..len {
            let (x, y) = if along_x { (i, line) } else { (line, i) };
            d[line * len + i] = u[y * nx + x];
        }
    }
    SystemBatch::new(lines, len, a, b, c, d).expect("valid ADI batch")
}

/// Write solved lines back into the grid.
fn scatter_rows(u: &mut [f32], x: &[f32], along_x: bool) {
    let (lines, len, nx) = if along_x { (NY, NX, NX) } else { (NX, NY, NX) };
    for line in 0..lines {
        for i in 0..len {
            let (gx, gy) = if along_x { (i, line) } else { (line, i) };
            u[gy * nx + gx] = x[line * len + i];
        }
    }
}
