//! Quickstart: solve a batch of tridiagonal systems on a simulated GPU with
//! the auto-tuned multi-stage solver, and verify the result.
//!
//! Run with: `cargo run --release --example quickstart`

use trisolve::prelude::*;

fn main() {
    // 1. A workload: 64 diagonally dominant systems of 8192 equations —
    //    too large for any GPU's shared memory, so the solver must split.
    let shape = WorkloadShape::new(64, 8192);
    let batch = random_dominant::<f32>(shape, 42).expect("valid workload");
    println!(
        "workload: {} ({} total equations, {:.1} MB of coefficients)",
        shape.label(),
        shape.total_equations(),
        batch.coefficient_bytes() as f64 / 1e6,
    );

    // 2. A simulated device (paper Table I) and a runtime self-tuning pass.
    let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
    let mut tuner = DynamicTuner::new();
    let config = tuner.tune_for(&mut gpu, shape);
    println!(
        "tuned for {}: on-chip size {}, Thomas switch {}, stage-1 target {} ({} micro-benchmarks)",
        gpu.spec().name(),
        config.onchip_size,
        config.thomas_switch,
        config.stage1_target_systems,
        config.evaluations,
    );

    // 3. Solve.
    let params = tuner.params_for(shape, gpu.spec().queryable(), 4);
    let outcome = solve_batch_on_gpu(&mut gpu, &batch, &params).expect("solve succeeds");
    println!("plan: {}", outcome.plan.summary());
    println!(
        "solved in {:.3} simulated ms across {} kernel launches",
        outcome.sim_time_ms(),
        outcome.kernel_stats.len()
    );

    // 4. Verify against the systems themselves.
    let residual = batch_worst_relative_residual(&batch, &outcome.x).expect("shapes match");
    println!("worst relative residual: {residual:.2e}");
    assert!(residual < 1e-4, "single-precision solve must be accurate");

    // 5. Compare with the untuned defaults to see what tuning bought.
    let untuned = SolverParams::default_untuned();
    let untuned_outcome = {
        let mut fresh: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
        solve_batch_on_gpu(&mut fresh, &batch, &untuned).expect("solve succeeds")
    };
    println!(
        "untuned defaults: {:.3} ms  ->  tuned: {:.3} ms  ({:.2}x)",
        untuned_outcome.sim_time_ms(),
        outcome.sim_time_ms(),
        untuned_outcome.sim_time_ms() / outcome.sim_time_ms(),
    );
}
