//! Ocean-model vertical mixing — the HYCOM-style application the paper's
//! introduction cites (Halliwell, *Ocean Modelling* 2004).
//!
//! An ocean model advances temperature (and salinity, …) with an implicit
//! vertical-diffusion step in every water column: for a horizontal grid of
//! `NX × NY` columns of `NZ` layers, that is `NX·NY` independent
//! tridiagonal systems of `NZ` equations **per time step, per tracer** —
//! the "hundreds or thousands of tridiagonal systems" workload the
//! multi-stage solver was built for. Layer thicknesses and eddy
//! diffusivities vary with depth, so the systems are non-Toeplitz.
//!
//! Run with: `cargo run --release --example ocean_columns`

use trisolve::prelude::*;

/// Horizontal grid (number of water columns = NX·NY).
const NX: usize = 64;
const NY: usize = 32;
/// Vertical layers per column.
const NZ: usize = 128;
/// Time step (s) and number of steps.
const DT: f64 = 360.0;
const STEPS: usize = 6;

fn main() {
    let columns = NX * NY;

    // Layer geometry: thicknesses grow geometrically with depth (mixed
    // layer ~2 m at the top, ~100 m near the bottom), as in a z-coordinate
    // ocean model.
    let dz: Vec<f64> = (0..NZ)
        .map(|k| 2.0 * (1.0 + 0.03f64).powi(k as i32))
        .collect();

    // Eddy diffusivity profile: strong in the surface mixed layer,
    // background value below the thermocline.
    let kappa: Vec<f64> = (0..NZ)
        .map(|k| {
            let depth: f64 = dz[..k].iter().sum();
            1e-2 * (-depth / 50.0).exp() + 1e-5
        })
        .collect();

    // Initial temperature: warm surface, cold deep ocean, with a horizontal
    // gradient so columns differ.
    let mut temp = vec![0.0f32; columns * NZ];
    for c in 0..columns {
        let lat = (c / NX) as f64 / NY as f64;
        let mut depth = 0.0;
        for k in 0..NZ {
            depth += dz[k];
            let t = 4.0 + (18.0 - 10.0 * lat) * (-depth / 80.0).exp();
            temp[c * NZ + k] = t as f32;
        }
    }
    let surface0 = temp[0];
    let bottom0 = temp[NZ - 1];

    // Solver setup: one tuned configuration reused across every step and
    // tracer (the tuning cache usage pattern).
    let shape = WorkloadShape::new(columns, NZ);
    let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
    let mut tuner = DynamicTuner::new();
    tuner.tune_for(&mut gpu, shape);
    let params = tuner.params_for(shape, gpu.spec().queryable(), 4);
    println!(
        "{} columns x {NZ} layers on {}; tuned S3={} T4={}",
        columns,
        gpu.spec().name(),
        params.onchip_size,
        params.thomas_switch
    );

    let mut total_ms = 0.0;
    for step in 0..STEPS {
        let batch = implicit_diffusion_systems(&temp, &dz, &kappa);
        let out = solve_batch_on_gpu(&mut gpu, &batch, &params).expect("diffusion solve");
        temp.copy_from_slice(&out.x);
        total_ms += out.sim_time_ms();
        println!(
            "step {:>2}: surface {:6.3} degC  bottom {:6.3} degC  ({:7.3} ms cumulative)",
            step + 1,
            temp[0],
            temp[NZ - 1],
            total_ms
        );
    }

    // Physics sanity: diffusion moves heat downward — surface cools,
    // deep layers warm, column heat content is conserved (no-flux
    // boundaries).
    assert!(temp[0] < surface0, "surface must cool");
    assert!(temp[NZ - 1] >= bottom0 - 1e-3, "bottom must not cool");
    let heat = |t: &[f32]| -> f64 { (0..NZ).map(|k| t[k] as f64 * dz[k]).sum() };
    let h0 = {
        // Recompute the initial column-0 profile for the conservation check.
        let mut t0 = vec![0.0f32; NZ];
        let mut depth = 0.0;
        for k in 0..NZ {
            depth += dz[k];
            t0[k] = (4.0 + 18.0 * (-depth / 80.0).exp()) as f32;
        }
        heat(&t0)
    };
    let h1 = heat(&temp[..NZ]);
    let drift = ((h1 - h0) / h0).abs();
    println!(
        "column heat drift after {STEPS} steps: {:.3e} (no-flux boundaries)",
        drift
    );
    assert!(drift < 1e-4, "heat must be conserved, drift {drift:.3e}");
}

/// Assemble the backward-Euler vertical diffusion systems for every column:
/// `(I − Δt·D) T^{n+1} = T^n`, with conservative flux form on the
/// non-uniform grid and no-flux boundaries.
fn implicit_diffusion_systems(temp: &[f32], dz: &[f64], kappa: &[f64]) -> SystemBatch<f32> {
    let nz = dz.len();
    let columns = temp.len() / nz;
    let total = columns * nz;
    let mut a = vec![0.0f32; total];
    let mut b = vec![0.0f32; total];
    let mut c = vec![0.0f32; total];
    let mut d = vec![0.0f32; total];

    // Interface diffusivities and spacings (same for every column here;
    // a real model would vary them per column).
    let mut up = vec![0.0f64; nz]; // coupling to layer k-1
    let mut dn = vec![0.0f64; nz]; // coupling to layer k+1
    for k in 0..nz {
        if k > 0 {
            let dzi = 0.5 * (dz[k - 1] + dz[k]);
            let ki = 0.5 * (kappa[k - 1] + kappa[k]);
            up[k] = DT * ki / (dz[k] * dzi);
        }
        if k + 1 < nz {
            let dzi = 0.5 * (dz[k] + dz[k + 1]);
            let ki = 0.5 * (kappa[k] + kappa[k + 1]);
            dn[k] = DT * ki / (dz[k] * dzi);
        }
    }

    for col in 0..columns {
        for k in 0..nz {
            let idx = col * nz + k;
            a[idx] = -(up[k] as f32);
            c[idx] = -(dn[k] as f32);
            b[idx] = (1.0 + up[k] + dn[k]) as f32;
            d[idx] = temp[idx];
        }
    }
    SystemBatch::new(columns, nz, a, b, c, d).expect("valid diffusion batch")
}
