//! Spectral Poisson solver (Hockney's method, cited as [10] in the paper):
//! solve `−∇²u = f` on a rectangle by a sine transform in `y` followed by
//! one tridiagonal solve **per Fourier mode** — a perfectly parallel batch
//! of tridiagonal systems, solved here with the multi-stage GPU solver.
//!
//! Run with: `cargo run --release --example spectral_poisson`

use std::f64::consts::PI;
use trisolve::prelude::*;

/// Grid: NX interior columns × NY interior rows.
const NX: usize = 255;
const NY: usize = 127;

fn main() {
    let hx = 1.0 / (NX as f64 + 1.0);
    let hy = 1.0 / (NY as f64 + 1.0);

    // Manufactured solution u* = sin(3πx)·sin(2πy)  =>  f = (9+4)π²·u*.
    let exact = |x: f64, y: f64| (3.0 * PI * x).sin() * (2.0 * PI * y).sin();
    let mut f = vec![0.0f64; NX * NY];
    for j in 0..NY {
        for i in 0..NX {
            let (x, y) = ((i as f64 + 1.0) * hx, (j as f64 + 1.0) * hy);
            f[j * NX + i] = 13.0 * PI * PI * exact(x, y);
        }
    }

    // --- 1. Sine transform of every column in y (naive O(NY²) DST-I). ---
    let mut fhat = vec![0.0f64; NX * NY];
    for i in 0..NX {
        for k in 0..NY {
            let mut acc = 0.0;
            for j in 0..NY {
                acc += f[j * NX + i] * ((k + 1) as f64 * (j + 1) as f64 * PI * hy).sin();
            }
            fhat[k * NX + i] = acc * 2.0 * hy;
        }
    }

    // --- 2. One tridiagonal system per mode k along x. -------------------
    // (2/hy²)(1 − cos((k+1)π·hy)) is the eigenvalue of −δ²_y for mode k.
    let total = NY * NX;
    let mut a = vec![-1.0 / (hx * hx); total];
    let mut b = vec![0.0f64; total];
    let mut c = vec![-1.0 / (hx * hx); total];
    let mut d = vec![0.0f64; total];
    for k in 0..NY {
        let lambda = 2.0 / (hy * hy) * (1.0 - ((k + 1) as f64 * PI * hy).cos());
        a[k * NX] = 0.0;
        c[k * NX + NX - 1] = 0.0;
        for i in 0..NX {
            b[k * NX + i] = 2.0 / (hx * hx) + lambda;
            d[k * NX + i] = fhat[k * NX + i];
        }
    }
    let batch = SystemBatch::new(NY, NX, a, b, c, d).expect("valid mode systems");

    let shape = WorkloadShape::new(NY, NX);
    let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
    let mut tuner = DynamicTuner::new();
    tuner.tune_for(&mut gpu, shape);
    let params = tuner.params_for(shape, gpu.spec().queryable(), 8);
    let outcome = solve_batch_on_gpu(&mut gpu, &batch, &params).expect("mode solves");
    println!(
        "solved {NY} Fourier-mode systems of {NX} equations in {:.3} simulated ms",
        outcome.sim_time_ms()
    );

    // --- 3. Inverse sine transform back to physical space. ---------------
    let uhat = &outcome.x;
    let mut u = vec![0.0f64; NX * NY];
    for i in 0..NX {
        for j in 0..NY {
            let mut acc = 0.0;
            for k in 0..NY {
                acc += uhat[k * NX + i] * ((k + 1) as f64 * (j + 1) as f64 * PI * hy).sin();
            }
            u[j * NX + i] = acc;
        }
    }

    // --- 4. Verify against the manufactured solution. --------------------
    let mut worst = 0.0f64;
    for j in 0..NY {
        for i in 0..NX {
            let (x, y) = ((i as f64 + 1.0) * hx, (j as f64 + 1.0) * hy);
            worst = worst.max((u[j * NX + i] - exact(x, y)).abs());
        }
    }
    println!("max |u − u*| = {worst:.3e} (second-order discretisation error)");
    assert!(
        worst < 5e-3,
        "spectral Poisson solution must match the manufactured solution"
    );
}
