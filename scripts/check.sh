#!/usr/bin/env bash
# Offline-friendly pre-merge gate: formatting, lints, tests.
#
# Everything here runs against the vendored dependency stubs in `vendor/`,
# so no network access is required. Usage:
#
#     scripts/check.sh
#
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, all targets, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (tier-1: root package) =="
cargo test -q

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "== kernel sanitizer smoke run =="
cargo run -q --release --bin trisolve -- sanitize --quick

echo "All checks passed."
