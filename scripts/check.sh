#!/usr/bin/env bash
# Offline-friendly pre-merge gate: formatting, lints, tests.
#
# Everything here runs against the vendored dependency stubs in `vendor/`,
# so no network access is required. Usage:
#
#     scripts/check.sh
#
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, all targets, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (tier-1: root package) =="
cargo test -q

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "== kernel sanitizer smoke run =="
cargo run -q --release --bin trisolve -- sanitize --quick

echo "== static analyzer smoke run (nonzero exit on unproven case) =="
cargo run -q --release --bin trisolve -- analyze --quick

echo "== chaos / resilience smoke run (nonzero exit on unrecovered case) =="
cargo run -q --release --bin trisolve -- chaos --quick

echo "== traced solve smoke run (chrome trace validates) =="
trace_out="$(mktemp)"
trap 'rm -f "$trace_out"' EXIT
# `trisolve trace` parses its own chrome export back and fails on invalid
# or empty JSON; the greps double-check the file landed with events.
cargo run -q --release --bin trisolve -- trace \
    --systems 4 --size 8192 --tuner static --out "$trace_out" >/dev/null
grep -q '"traceEvents"' "$trace_out"
grep -q '"ph":"X"' "$trace_out"

echo "All checks passed."
