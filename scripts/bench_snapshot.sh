#!/usr/bin/env bash
# Capture a machine-readable benchmark snapshot as BENCH_<n>.json.
#
# Runs the `snapshot` binary (per-device, per-workload solve costs for all
# three tuners, tuner-evaluation counts, trace-derived launch/byte
# counters; fixed seed, simulated clock — fully deterministic) and writes
# the JSON next to the repo root, numbered so successive snapshots can be
# diffed across commits.
#
# Usage:
#     scripts/bench_snapshot.sh            # next free number, full grid
#     scripts/bench_snapshot.sh --quick    # shrunken grid (fast)
#     scripts/bench_snapshot.sh 7          # force BENCH_7.json
#     scripts/bench_snapshot.sh 7 --quick
set -euo pipefail
cd "$(dirname "$0")/.."

num=""
quick=""
for arg in "$@"; do
    case "$arg" in
        --quick) quick="--quick" ;;
        ''|*[!0-9]*) echo "usage: $0 [n] [--quick]" >&2; exit 2 ;;
        *) num="$arg" ;;
    esac
done

if [[ -z "$num" ]]; then
    num=0
    while [[ -e "BENCH_${num}.json" ]]; do
        num=$((num + 1))
    done
fi
out="BENCH_${num}.json"

echo "== cargo build --release -p trisolve-bench =="
cargo build --release -p trisolve-bench

echo "== snapshot ${quick:+(quick) }-> ${out} =="
if [[ -n "$quick" ]]; then
    cargo run -q --release -p trisolve-bench --bin snapshot -- --quick > "$out"
else
    cargo run -q --release -p trisolve-bench --bin snapshot > "$out"
fi

# Sanity: the snapshot must be non-empty JSON with a devices array, the
# resilience counters of the tuned solve, the static-analysis pruning
# counters of the tuning run, and the many-small layout comparison —
# including at least one workload where the measured dynamic tuner
# actually selects the interleaved batched-Thomas fast path.
grep -q '"devices"' "$out"
grep -q '"retries"' "$out"
grep -q '"candidates_pruned"' "$out"
grep -q '"proofs_failed"' "$out"
grep -q '"many_small"' "$out"
grep -q '"staged_pcr_ms"' "$out"
grep -q '"batched_thomas_ms"' "$out"
grep -q '"dynamic_layout": "interleaved"' "$out"
echo "wrote $out ($(wc -c < "$out") bytes)"
